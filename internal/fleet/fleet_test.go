package fleet

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"evax/internal/dataset"
	"evax/internal/defense"
	"evax/internal/detect"
	"evax/internal/engine"
	"evax/internal/hpc"
	"evax/internal/serve"
	"evax/internal/sim"
	"evax/internal/testleak"
)

// testParts builds an untrained but seeded detector over the EVAX feature
// set with unit maxima — the same cheap fixture the engine tests use:
// structurally valid, deterministic, no training run.
func testParts(t *testing.T, seed int64, threshold float64) (*detect.Detector, *dataset.Dataset) {
	t.Helper()
	fs := detect.EVAXBase()
	fs.SetEngineered(detect.DefaultEngineered(fs))
	d := detect.NewPerceptron(seed, fs)
	d.Threshold = threshold
	maxima := make([]float64, hpc.DerivedSpaceSize(sim.CounterCatalog().Len()))
	for i := range maxima {
		maxima[i] = 1
	}
	return d, dataset.FromMaxima(maxima)
}

// testBundle returns bundle bytes for a (seed, threshold) pair. Distinct
// seeds yield distinct weights, hence distinct content hashes.
func testBundle(t *testing.T, seed int64, threshold float64) []byte {
	t.Helper()
	det, ds := testParts(t, seed, threshold)
	data, err := defense.EncodeBundle(det, ds)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// testCorpus fabricates n deterministic raw counter windows.
func testCorpus(n, rawDim int) []dataset.Sample {
	out := make([]dataset.Sample, n)
	for i := range out {
		raw := make([]float64, rawDim)
		for j := range raw {
			raw[j] = float64((i*31 + j*7) % 97)
		}
		out[i] = dataset.Sample{Raw: raw, Instructions: 2000, Cycles: 3100}
	}
	return out
}

// startFleet builds and starts a fleet over the bundle, registering drain as
// cleanup so testleak never sees a lingering shard.
func startFleet(t *testing.T, bundle []byte, cfg Config) *Fleet {
	t.Helper()
	f, err := New(bundle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		//evaxlint:ignore droppederr test cleanup; tests that care drain explicitly first
		f.Drain()
	})
	return f
}

// TestFleetReplayDigestInvariance is the golden gate: the merged verdict
// digest is bit-identical at shard counts 1, 2 and 4, and equal to the
// single-process serve.ReplayGeneration ground truth — sharding must never
// change a verdict.
func TestFleetReplayDigestInvariance(t *testing.T) {
	testleak.Check(t)
	bundle := testBundle(t, 1, 2)
	g, err := engine.FromBytes(bundle, "", "")
	if err != nil {
		t.Fatal(err)
	}
	samples := testCorpus(96, g.RawDim())
	truth, err := serve.ReplayGeneration(g, samples, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if truth.Rows != len(samples) {
		t.Fatalf("ground truth scored %d rows", truth.Rows)
	}

	for _, shards := range []int{1, 2, 4} {
		f := startFleet(t, bundle, Config{Shards: shards})
		rep, err := f.Replay(samples, ReplayOptions{Tenants: 8, Seed: 7})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if rep.Rows != len(samples) || rep.Shards != shards {
			t.Fatalf("shards=%d report: %+v", shards, rep)
		}
		if rep.Hash != truth.Hash {
			t.Fatalf("shards=%d digest %s, ground truth %s — sharding changed a verdict",
				shards, rep.HashHex(), truth.HashHex())
		}
		if rep.Flagged != truth.Flagged {
			t.Fatalf("shards=%d flagged %d, ground truth %d", shards, rep.Flagged, truth.Flagged)
		}
		total := 0
		for _, n := range rep.ShardRows {
			total += n
		}
		if total != len(samples) {
			t.Fatalf("shards=%d shard rows %v sum to %d", shards, rep.ShardRows, total)
		}
		if _, err := f.Drain(); err != nil {
			t.Fatalf("shards=%d drain: %v", shards, err)
		}
	}
}

// TestFleetReplaySeedAndTenantInvariance: the routing seed and tenant count
// move tenants across shards but can never move the merged digest.
func TestFleetReplaySeedAndTenantInvariance(t *testing.T) {
	testleak.Check(t)
	bundle := testBundle(t, 1, 2)
	f := startFleet(t, bundle, Config{Shards: 4})
	samples := testCorpus(64, f.RawDim())

	var want uint64
	for i, opt := range []ReplayOptions{
		{Tenants: 8, Seed: 1},
		{Tenants: 8, Seed: 99},
		{Tenants: 3, Seed: 1},
		{Tenants: 1, Seed: 1},
	} {
		rep, err := f.Replay(samples, opt)
		if err != nil {
			t.Fatalf("opt %d: %v", i, err)
		}
		if i == 0 {
			want = rep.Hash
			continue
		}
		if rep.Hash != want {
			t.Fatalf("opt %+v digest %016x, want %016x", opt, rep.Hash, want)
		}
	}
}

// TestFleetSwapMidReplay: a coordinator-driven fleet-wide swap lands while
// tenants are mid-stream. Zero frames may be dropped (the replay's
// exactly-once accounting enforces it), every shard must finish on the
// candidate generation at the same epoch, and the bus must announce the swap.
func TestFleetSwapMidReplay(t *testing.T) {
	testleak.Check(t)
	bundle := testBundle(t, 1, 2)
	g, err := engine.FromBytes(bundle, "", "")
	if err != nil {
		t.Fatal(err)
	}
	canary := testCorpus(24, g.RawDim())
	f := startFleet(t, bundle, Config{Shards: 2, Corpus: canary})
	incumbent := f.Managers()[0].Active().HashHex()

	cfgSub, err := f.Bus().Config.Subscribe("test", 4)
	if err != nil {
		t.Fatal(err)
	}

	// Same threshold, different seed: verdict-compatible on the canary (no
	// rows flag at threshold 2) so the agreement gate passes, but distinct
	// bundle bytes so the swap is real.
	cand := filepath.Join(t.TempDir(), "cand.json")
	det, ds := testParts(t, 2, 2)
	if err := defense.SaveBundle(cand, det, ds); err != nil {
		t.Fatal(err)
	}

	coord := NewCoordinator(f.Members(), time.Hour, f.Bus())
	samples := testCorpus(96, f.RawDim())
	tenants := 4
	trigger := (len(samples) / tenants) / 2

	var (
		once     sync.Once
		swapDone = make(chan struct{})
		swapRep  engine.FleetSwapReport
		swapErr  error
	)
	rep, err := f.Replay(samples, ReplayOptions{
		Tenants: tenants,
		Seed:    7,
		AfterSend: func(tenant, sent int) {
			if tenant == 0 && sent == trigger {
				once.Do(func() {
					go func() {
						defer close(swapDone)
						swapRep, swapErr = coord.SwapAll(cand)
					}()
				})
			}
		},
	})
	<-swapDone
	if err != nil {
		t.Fatalf("replay lost frames across the swap: %v", err)
	}
	if rep.Rows != len(samples) {
		t.Fatalf("replay scored %d/%d rows", rep.Rows, len(samples))
	}
	if swapErr != nil {
		t.Fatalf("fleet swap: %v (report %+v)", swapErr, swapRep)
	}
	if !swapRep.Swapped || !swapRep.Aligned || !swapRep.EpochAligned || swapRep.Epoch != 2 {
		t.Fatalf("swap report: %+v", swapRep)
	}
	if swapRep.ActiveHash == incumbent {
		t.Fatal("swap was a no-op; candidate bytes matched the incumbent")
	}
	for i, m := range f.Managers() {
		if m.Active().HashHex() != swapRep.ActiveHash {
			t.Fatalf("shard %d on %s after swap, fleet hash %s", i, m.Active().HashHex(), swapRep.ActiveHash)
		}
	}

	env := <-cfgSub.C()
	if env.Val.Kind != "swap" || !env.Val.Ok || env.Val.Hash != swapRep.ActiveHash || env.Val.Epoch != 2 {
		t.Fatalf("bus announcement: %+v", env.Val)
	}
}

// TestCoordinatorRestartRejoin: shards keep scoring while the coordinator is
// down, and a fresh coordinator over the same membership sees a healthy,
// aligned fleet.
func TestCoordinatorRestartRejoin(t *testing.T) {
	testleak.Check(t)
	bundle := testBundle(t, 1, 2)
	f := startFleet(t, bundle, Config{Shards: 2})
	samples := testCorpus(48, f.RawDim())
	truth, err := f.Replay(samples, ReplayOptions{Tenants: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	coord := NewCoordinator(f.Members(), time.Hour, f.Bus())
	coord.Start()
	// Start probes immediately; Health is populated once the first sweep
	// lands. ProbeAll gives us a deterministic second sweep to assert on.
	health := coord.ProbeAll()
	for _, h := range health {
		if !h.Alive || h.Epoch != 1 || h.Err != "" {
			t.Fatalf("pre-restart health: %+v", h)
		}
	}
	coord.Stop() // coordinator crash

	// Data plane keeps working with no coordinator: same corpus, same digest.
	rep, err := f.Replay(samples, ReplayOptions{Tenants: 4, Seed: 2})
	if err != nil {
		t.Fatalf("replay during coordinator downtime: %v", err)
	}
	if rep.Hash != truth.Hash {
		t.Fatalf("digest moved during coordinator downtime: %s vs %s", rep.HashHex(), truth.HashHex())
	}

	// Restart = a fresh coordinator over the same membership; it rejoins by
	// probing, with no shard-side handshake to replay.
	coord2 := NewCoordinator(f.Members(), time.Hour, f.Bus())
	hash := f.Managers()[0].Active().HashHex()
	for _, h := range coord2.ProbeAll() {
		if !h.Alive || h.Hash != hash || h.Epoch != 1 {
			t.Fatalf("post-restart health: %+v", h)
		}
	}
	if got := coord2.Health(); len(got) != 2 {
		t.Fatalf("cached health: %+v", got)
	}
}

// TestFleetStatsProvenance: snapshots published on the stats topic carry the
// shard ID serve stamped, so merged fleet metrics stay attributable.
func TestFleetStatsProvenance(t *testing.T) {
	testleak.Check(t)
	bundle := testBundle(t, 1, 2)
	f := startFleet(t, bundle, Config{Shards: 3})
	sub, err := f.Bus().Stats.Subscribe("test", 8)
	if err != nil {
		t.Fatal(err)
	}
	snaps := f.PublishStats()
	if len(snaps) != 3 {
		t.Fatalf("%d snapshots", len(snaps))
	}
	for i, snap := range snaps {
		if snap.Shard != i {
			t.Fatalf("snapshot %d stamped shard %d", i, snap.Shard)
		}
		env := <-sub.C()
		if env.Val.Shard != i {
			t.Fatalf("bus snapshot %d stamped shard %d", i, env.Val.Shard)
		}
	}
}
