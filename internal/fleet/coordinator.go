package fleet

import (
	"fmt"
	"sync"
	"time"

	"evax/internal/engine"
	"evax/internal/runner"
	"evax/internal/serve"
)

// DefaultProbeInterval paces the coordinator's heartbeat loop.
const DefaultProbeInterval = time.Second

// probeTimeout bounds each over-the-wire probe read so a wedged shard costs
// the heartbeat loop one deadline, not a hang.
const probeTimeout = 5 * time.Second

// Member is one shard as the coordinator sees it: its ID, its framing
// address (probed over the wire, exactly like an external client would), and
// its manager (the in-process promotion target for fleet-wide swaps).
type Member struct {
	ID   int
	Addr string
	Mgr  *engine.Manager
}

// Health is one shard's most recent probe result. The probe exercises the
// real client path end to end: dial + hello, ping/pong (the serve heartbeat
// frames), and an admin status for the generation pair.
type Health struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	// Alive reports whether the full probe (hello, ping, status) succeeded.
	Alive bool `json:"alive"`
	// RTTMs is the round-trip time of the ping/pong exchange.
	RTTMs float64 `json:"rtt_ms"`
	// Hash, Epoch and Backend mirror the shard's admin status.
	Hash    string `json:"hash,omitempty"`
	Epoch   uint64 `json:"epoch,omitempty"`
	Backend string `json:"backend,omitempty"`
	// Err explains a failed probe.
	Err string `json:"err,omitempty"`
}

// Coordinator tracks shard membership and health and drives fleet-wide
// generation swaps. It holds no data-plane state: shards keep scoring with
// or without a live coordinator, and a restarted coordinator rebuilds its
// health view from one probe round — which is what makes
// restart-and-rejoin a non-event (exercised by the e2e tests).
type Coordinator struct {
	members  []Member
	interval time.Duration
	bus      *Bus // optional; nil publishes nothing

	mu     sync.Mutex
	health []Health
	ticks  uint64

	stop chan struct{}
	done chan struct{}
}

// NewCoordinator builds a coordinator over a fixed membership. interval <= 0
// means DefaultProbeInterval; bus may be nil.
func NewCoordinator(members []Member, interval time.Duration, bus *Bus) *Coordinator {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	health := make([]Health, len(members))
	for i, m := range members {
		health[i] = Health{Shard: m.ID, Addr: m.Addr}
	}
	return &Coordinator{members: members, interval: interval, bus: bus, health: health}
}

// Start launches the heartbeat loop: an immediate probe round, then one per
// interval until Stop.
func (c *Coordinator) Start() {
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.loop()
}

// Stop halts the heartbeat loop and waits for it to exit. The coordinator
// can be probed manually (ProbeAll) or discarded afterwards; shards are
// untouched.
func (c *Coordinator) Stop() {
	if c.stop == nil {
		return
	}
	close(c.stop)
	<-c.done
	c.stop = nil
}

func (c *Coordinator) loop() {
	defer close(c.done)
	c.ProbeAll()
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.ProbeAll()
		}
	}
}

// ProbeAll probes every member concurrently and returns the refreshed health
// view in member order.
func (c *Coordinator) ProbeAll() []Health {
	c.mu.Lock()
	c.ticks++
	tick := c.ticks
	c.mu.Unlock()

	health := runner.Map(runner.Options{Jobs: len(c.members)}, len(c.members), func(i int) Health {
		return probeMember(c.members[i], tick)
	})
	c.mu.Lock()
	c.health = health
	c.mu.Unlock()
	return health
}

// Health returns the most recent probe round, in member order.
func (c *Coordinator) Health() []Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Health(nil), c.health...)
}

// probeMember runs one full-path probe: dial + hello, ping/pong, admin
// status.
func probeMember(m Member, tick uint64) Health {
	h := Health{Shard: m.ID, Addr: m.Addr}
	cl, err := serve.Dial(m.Addr, m.Mgr.Active().RawDim())
	if err != nil {
		h.Err = err.Error()
		return h
	}
	//evaxlint:ignore droppederr close failure on a finished probe connection loses nothing
	defer cl.Close()
	//evaxlint:ignore droppederr a failed deadline set surfaces as the probe read failing
	cl.SetReadDeadline(time.Now().Add(probeTimeout))

	// Ping with a token derived the same way corpus seeds are, so a given
	// (shard, tick) pair always probes with the same token.
	token := uint64(runner.DeriveSeed("fleet/ping", m.ID, int64(tick)))
	start := time.Now()
	if err := cl.Ping(token); err != nil {
		h.Err = err.Error()
		return h
	}
	fr, err := cl.Recv()
	if err != nil {
		h.Err = err.Error()
		return h
	}
	h.RTTMs = float64(time.Since(start)) / float64(time.Millisecond)
	if fr.Type != serve.FramePong {
		h.Err = fmt.Sprintf("fleet: expected pong, got frame type 0x%02x", fr.Type)
		return h
	}
	echo, err := serve.DecodePong(fr.Payload)
	if err != nil {
		h.Err = err.Error()
		return h
	}
	if echo != token {
		h.Err = fmt.Sprintf("fleet: pong echoed token %d, sent %d", echo, token)
		return h
	}

	st, err := cl.Status()
	if err != nil {
		h.Err = err.Error()
		return h
	}
	h.Hash = st.ActiveHash
	h.Epoch = st.Epoch
	h.Backend = st.Backend
	h.Alive = true
	return h
}

// SwapAll fans one candidate bundle across every member's manager with
// all-or-rollback semantics (engine.PromoteAllFile) and publishes the
// outcome on the config topic. The fleet never stays split: either every
// shard ends on the candidate, or every swapped shard is rolled back to the
// incumbent.
func (c *Coordinator) SwapAll(path string) (engine.FleetSwapReport, error) {
	mgrs := make([]*engine.Manager, len(c.members))
	for i, m := range c.members {
		mgrs[i] = m.Mgr
	}
	rep, err := engine.PromoteAllFile(mgrs, path)
	if c.bus != nil {
		// Ok means "the fleet ended aligned on the target generation" — true
		// for a fleet-wide no-op (already on the candidate), false whenever
		// the promotion errored, even though the unwind realigned the fleet.
		up := ConfigUpdate{Kind: "swap", Ok: err == nil && rep.Aligned, Hash: rep.ActiveHash, Epoch: rep.Epoch}
		if err != nil {
			up.Detail = err.Error()
		}
		c.bus.Config.Publish(up)
	}
	return rep, err
}
