package fleet

import (
	"fmt"
	"sync"
)

// DefaultQueueDepth bounds a subscriber's queue when Subscribe is called
// with depth <= 0.
const DefaultQueueDepth = 64

// Envelope wraps a published value with its topic-assigned sequence number.
// Sequence numbers are monotone per topic starting at 1, assigned under the
// publish lock, so every subscriber observes the same total order and can
// detect sheds by gaps in Seq.
type Envelope[T any] struct {
	Seq uint64
	Val T
}

// Sub is one subscription on a Topic. Values arrive on C in publish order.
// A subscriber that falls behind its bounded queue loses the NEWEST
// envelope at publish time (shed-on-overflow); the loss is deterministic in
// the sense that it depends only on queue occupancy at the publish, never on
// timing races between subscribers, and every shed is counted.
type Sub[T any] struct {
	name  string
	c     chan Envelope[T]
	topic *Topic[T]

	mu     sync.Mutex
	shed   uint64
	closed bool
}

// C returns the subscription's delivery channel. It is closed when the
// subscription is cancelled or the topic is closed.
func (s *Sub[T]) C() <-chan Envelope[T] { return s.c }

// Name returns the subscriber name given at Subscribe time.
func (s *Sub[T]) Name() string { return s.name }

// Shed reports how many envelopes were dropped because this subscriber's
// queue was full at publish time.
func (s *Sub[T]) Shed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shed
}

// Cancel removes the subscription from its topic and closes C. Safe to call
// more than once.
func (s *Sub[T]) Cancel() { s.topic.cancel(s) }

// Topic is a typed publish/subscribe channel for control-plane traffic
// (config updates, verdict aggregates, shard stats frames). It follows the
// EVE pillar pubsub shape — named topics, per-subscriber queues — but with
// two determinism guarantees the data-plane digest discipline demands:
//
//  1. Publish ordering is total: sequence numbers are assigned under one
//     lock and delivery fans out to subscribers in registration order, so
//     any two subscribers that both receive envelopes i and j agree on
//     their relative order.
//  2. Overflow is shed deterministically: a publish to a full subscriber
//     queue drops that envelope for that subscriber and counts it, rather
//     than blocking the publisher or picking a victim by timing.
type Topic[T any] struct {
	name string

	mu     sync.Mutex
	seq    uint64
	subs   []*Sub[T]
	closed bool
}

// NewTopic creates a named topic.
func NewTopic[T any](name string) *Topic[T] {
	return &Topic[T]{name: name}
}

// Name returns the topic name.
func (t *Topic[T]) Name() string { return t.name }

// Subscribe registers a subscriber with a bounded queue. depth <= 0 uses
// DefaultQueueDepth. Subscribing to a closed topic returns an error.
func (t *Topic[T]) Subscribe(name string, depth int) (*Sub[T], error) {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("fleet: subscribe %q on closed topic %q", name, t.name)
	}
	s := &Sub[T]{name: name, c: make(chan Envelope[T], depth), topic: t}
	t.subs = append(t.subs, s)
	return s, nil
}

// Publish assigns the next sequence number and delivers the envelope to
// every live subscriber in registration order. It never blocks: a
// subscriber whose queue is full sheds this envelope (counted on the Sub).
// Publishing on a closed topic is a no-op returning 0.
func (t *Topic[T]) Publish(v T) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return 0
	}
	t.seq++
	env := Envelope[T]{Seq: t.seq, Val: v}
	for _, s := range t.subs {
		select {
		case s.c <- env:
		default:
			s.mu.Lock()
			s.shed++
			s.mu.Unlock()
		}
	}
	return t.seq
}

// Seq returns the last assigned sequence number (0 before the first
// publish).
func (t *Topic[T]) Seq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Close shuts the topic: all subscriber channels are closed and later
// publishes become no-ops. Safe to call more than once.
func (t *Topic[T]) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for _, s := range t.subs {
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			close(s.c)
		}
		s.mu.Unlock()
	}
	t.subs = nil
}

func (t *Topic[T]) cancel(s *Sub[T]) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, cur := range t.subs {
		if cur == s {
			t.subs = append(t.subs[:i], t.subs[i+1:]...)
			break
		}
	}
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.c)
	}
	s.mu.Unlock()
}
