package fleet

import (
	"errors"
	"fmt"
	"path/filepath"

	"evax/internal/dataset"
	"evax/internal/engine"
	"evax/internal/serve"
)

// ConfigUpdate is the control-plane announcement the coordinator publishes
// on the bus after every fleet-wide generation operation: which generation
// the fleet is (or failed to get) on.
type ConfigUpdate struct {
	// Kind names the operation: "swap" or "rollback".
	Kind string `json:"kind"`
	// Ok reports whether the fleet ended aligned on the target generation.
	Ok bool `json:"ok"`
	// Hash is the fleet-wide active generation hash after the operation
	// ("" when shards diverged).
	Hash string `json:"hash,omitempty"`
	// Epoch is the fleet-wide epoch after the operation (0 when unaligned).
	Epoch uint64 `json:"epoch,omitempty"`
	// Detail explains a failed or rolled-back operation.
	Detail string `json:"detail,omitempty"`
}

// VerdictAggregate is one shard's replay summary published on the bus: how
// many rows the router sent it, how many it flagged, and its per-shard
// verdict digest (folded in corpus order over the shard's rows).
type VerdictAggregate struct {
	Shard   int    `json:"shard"`
	Rows    int    `json:"rows"`
	Flagged int    `json:"flagged"`
	Digest  string `json:"digest"`
}

// Bus groups the fleet's control-plane topics. Data-plane traffic (samples,
// verdicts) never touches the bus — it stays on the serve framing protocol —
// so a slow control-plane subscriber can shed without touching a verdict.
type Bus struct {
	// Config carries fleet-wide generation announcements.
	Config *Topic[ConfigUpdate]
	// Verdicts carries per-shard replay verdict aggregates.
	Verdicts *Topic[VerdictAggregate]
	// Stats carries per-shard metrics snapshots (shard ID and generation
	// provenance stamped by serve).
	Stats *Topic[serve.Snapshot]
}

// NewBus creates the three fleet topics.
func NewBus() *Bus {
	return &Bus{
		Config:   NewTopic[ConfigUpdate]("fleet/config"),
		Verdicts: NewTopic[VerdictAggregate]("fleet/verdicts"),
		Stats:    NewTopic[serve.Snapshot]("fleet/stats"),
	}
}

// Close shuts every topic.
func (b *Bus) Close() {
	b.Config.Close()
	b.Verdicts.Close()
	b.Stats.Close()
}

// Config parameterizes a Fleet.
type Config struct {
	// Shards is the number of detection shards to host.
	Shards int
	// Replicas is the virtual-node count per shard on the routing ring
	// (<= 0 means DefaultReplicas).
	Replicas int
	// Serve is the per-shard server template. Addr is ignored (every shard
	// listens on its own ephemeral loopback port unless Addrs is set);
	// ShardID is stamped per shard; HTTPAddr, when set, is kept only on
	// shard 0 (one process, one debug endpoint).
	Serve serve.Config
	// Addrs, when non-empty, pins each shard's listen address (length must
	// equal Shards). Empty means ephemeral loopback ports.
	Addrs []string
	// StateDir, when non-empty, gives each shard a crash-safe generation
	// ledger under StateDir/shard-<i>.
	StateDir string
	// Corpus is the golden canary corpus each shard's manager gates
	// promotions against (empty = ungated).
	Corpus []dataset.Sample
	// AgreementGate overrides the canary agreement floor (0 = engine
	// default).
	AgreementGate float64
}

// Fleet hosts N in-process detection shards — each a full serve.Server with
// its own listener, manager and generation pair — plus the routing ring and
// control-plane bus that make them one logical service.
type Fleet struct {
	cfg    Config
	ring   *Ring
	srvs   []*serve.Server
	mgrs   []*engine.Manager
	bus    *Bus
	rawDim int
}

// New builds a fleet serving one bundle: every shard compiles its own
// generation from the same bundle bytes (so all shards start on the same
// content hash, epoch 1) behind its own manager and server. Call Start to
// begin listening.
func New(bundle []byte, cfg Config) (*Fleet, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("fleet: Shards must be positive, got %d", cfg.Shards)
	}
	if len(cfg.Addrs) != 0 && len(cfg.Addrs) != cfg.Shards {
		return nil, fmt.Errorf("fleet: %d addrs pinned for %d shards", len(cfg.Addrs), cfg.Shards)
	}
	ring, err := NewRing(cfg.Shards, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	if cfg.Serve.MaxBatch == 0 {
		cfg.Serve = serve.DefaultConfig()
	}

	f := &Fleet{cfg: cfg, ring: ring, bus: NewBus()}
	for i := 0; i < cfg.Shards; i++ {
		g, err := engine.FromBytes(bundle, "", cfg.Serve.Backend)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d generation: %w", i, err)
		}
		mcfg := engine.ManagerConfig{
			Backend:       cfg.Serve.Backend,
			Corpus:        cfg.Corpus,
			AgreementGate: cfg.AgreementGate,
		}
		if cfg.StateDir != "" {
			mcfg.Dir = filepath.Join(cfg.StateDir, fmt.Sprintf("shard-%d", i))
		}
		mgr, err := engine.NewManager(g, mcfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d manager: %w", i, err)
		}
		scfg := cfg.Serve
		scfg.ShardID = i
		scfg.Addr = "127.0.0.1:0"
		if len(cfg.Addrs) != 0 {
			scfg.Addr = cfg.Addrs[i]
		}
		if i != 0 {
			scfg.HTTPAddr = ""
		}
		if scfg.StatsPath != "" {
			scfg.StatsPath = fmt.Sprintf("%s.shard-%d", scfg.StatsPath, i)
		}
		srv, err := serve.NewFromManager(mgr, scfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d server: %w", i, err)
		}
		f.srvs = append(f.srvs, srv)
		f.mgrs = append(f.mgrs, mgr)
		f.rawDim = mgr.Active().RawDim()
	}
	return f, nil
}

// Start begins listening on every shard. A shard that fails to bind drains
// the shards already started before returning the error.
func (f *Fleet) Start() error {
	for i, srv := range f.srvs {
		if err := srv.Start(); err != nil {
			for j := 0; j < i; j++ {
				//evaxlint:ignore droppederr startup already failed; the bind error is what the caller acts on
				f.srvs[j].Drain()
			}
			return fmt.Errorf("fleet: shard %d: %w", i, err)
		}
	}
	return nil
}

// Shards returns the shard count.
func (f *Fleet) Shards() int { return len(f.srvs) }

// RawDim returns the counter dimensionality every shard streams.
func (f *Fleet) RawDim() int { return f.rawDim }

// Ring exposes the routing ring.
func (f *Fleet) Ring() *Ring { return f.ring }

// Bus exposes the control-plane topics.
func (f *Fleet) Bus() *Bus { return f.bus }

// Addrs returns each shard's bound framing address, in shard order. Valid
// after Start.
func (f *Fleet) Addrs() []string {
	addrs := make([]string, len(f.srvs))
	for i, srv := range f.srvs {
		addrs[i] = srv.Addr()
	}
	return addrs
}

// Managers returns the per-shard live-vaccination managers, in shard order —
// the fan-out targets for fleet-wide promotions.
func (f *Fleet) Managers() []*engine.Manager { return f.mgrs }

// Server returns shard i's server.
func (f *Fleet) Server(i int) *serve.Server { return f.srvs[i] }

// Members describes the fleet for a Coordinator: shard IDs, bound addresses
// and managers. Valid after Start.
func (f *Fleet) Members() []Member {
	members := make([]Member, len(f.srvs))
	for i, srv := range f.srvs {
		members[i] = Member{ID: i, Addr: srv.Addr(), Mgr: f.mgrs[i]}
	}
	return members
}

// PublishStats snapshots every shard and publishes the snapshots (shard ID
// and generation provenance stamped) on the stats topic, returning them in
// shard order.
func (f *Fleet) PublishStats() []serve.Snapshot {
	snaps := make([]serve.Snapshot, len(f.srvs))
	for i, srv := range f.srvs {
		snaps[i] = srv.Snapshot()
		f.bus.Stats.Publish(snaps[i])
	}
	return snaps
}

// Drain gracefully stops every shard (each drain flushes every accepted
// sample), publishes the final stats frames, closes the bus, and returns the
// final snapshots in shard order along with the first drain error.
func (f *Fleet) Drain() ([]serve.Snapshot, error) {
	snaps := make([]serve.Snapshot, len(f.srvs))
	var errs []error
	for i, srv := range f.srvs {
		snap, err := srv.Drain()
		snaps[i] = snap
		if err != nil {
			errs = append(errs, fmt.Errorf("fleet: shard %d drain: %w", i, err))
		}
	}
	for _, snap := range snaps {
		f.bus.Stats.Publish(snap)
	}
	f.bus.Close()
	return snaps, errors.Join(errs...)
}
