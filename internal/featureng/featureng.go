// Package featureng implements the paper's automatic security-HPC
// engineering (§VI-A): instead of brute-forcing the ~2.6e8 ways to combine
// counters, it inspects the hidden nodes of the trained AM-GAN generator.
// The hidden nodes that drive the output feature layer hardest encode which
// counters the generative model of attacks co-activates; the AND of each
// such node's two dominant counters becomes a new security-centric HPC
// (paper Table I, e.g. "lsq.squashedStores AND lsq.forwLoads").
package featureng

import (
	"fmt"
	"math"
	"sort"

	"evax/internal/ml"
)

// ANDFeature is one engineered counter: the boolean AND of two base
// features (indices into the detector's feature space), implementable in
// hardware with a single gate on the two counters' threshold outputs.
type ANDFeature struct {
	A, B   int
	Name   string
	Weight float64 // the hidden-node salience that selected it
}

// Eval computes the engineered feature for a normalized sample: the
// geometric interaction of the two features (both must be active). The
// hardware realizes it as threshold(A) AND threshold(B); the continuous
// form keeps gradient-based tooling working.
func (f ANDFeature) Eval(features []float64) float64 {
	return features[f.A] * features[f.B]
}

// EvalBinary is the hardware form: 1 iff both features exceed their
// thresholds.
func (f ANDFeature) EvalBinary(features []float64, thresholds []float64) float64 {
	if features[f.A] > thresholds[f.A] && features[f.B] > thresholds[f.B] {
		return 1
	}
	return 0
}

// Mine extracts k engineered features from a trained generator. For each
// hidden node of the generator's last hidden layer, salience is the largest
// |weight| connecting it to the output (feature) layer; the node's two
// strongest output connections name the counters to combine. featureOf maps
// an output index to a feature index/name in the detector space; outputs
// mapping to -1 are skipped.
func Mine(gen *ml.Network, k int, featureOf func(out int) (int, string)) []ANDFeature {
	if len(gen.Layers) < 2 {
		return nil
	}
	outLayer := gen.Layers[len(gen.Layers)-1]
	type nodeSal struct {
		node int
		sal  float64
	}
	sal := make([]nodeSal, outLayer.In)
	for h := 0; h < outLayer.In; h++ {
		var m float64
		for o := 0; o < outLayer.Out; o++ {
			if a := math.Abs(outLayer.W[o][h]); a > m {
				m = a
			}
		}
		sal[h] = nodeSal{h, m}
	}
	sort.Slice(sal, func(i, j int) bool { return sal[i].sal > sal[j].sal })

	var out []ANDFeature
	seen := map[[2]int]bool{}
	for _, ns := range sal {
		if len(out) >= k {
			break
		}
		// The node's two dominant output features.
		best, second := -1, -1
		var bw, sw float64
		for o := 0; o < outLayer.Out; o++ {
			a := math.Abs(outLayer.W[o][ns.node])
			switch {
			case a > bw:
				second, sw = best, bw
				best, bw = o, a
			case a > sw:
				second, sw = o, a
			}
		}
		if best < 0 || second < 0 {
			continue
		}
		ai, an := featureOf(best)
		bi, bn := featureOf(second)
		if ai < 0 || bi < 0 || ai == bi {
			continue
		}
		if ai > bi {
			ai, bi = bi, ai
			an, bn = bn, an
		}
		key := [2]int{ai, bi}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, ANDFeature{
			A:      ai,
			B:      bi,
			Name:   fmt.Sprintf("%s AND %s", an, bn),
			Weight: ns.sal,
		})
	}
	return out
}

// Append evaluates the engineered features and appends them to a base
// feature vector, returning the extended vector.
func Append(base []float64, feats []ANDFeature) []float64 {
	out := make([]float64, len(base)+len(feats))
	copy(out, base)
	for i, f := range feats {
		out[len(base)+i] = f.Eval(base)
	}
	return out
}
