package featureng

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"evax/internal/gan"
	"evax/internal/ml"
)

func names(i int) (int, string) { return i, fmt.Sprintf("hpc%d", i) }

func TestMineFromHandCraftedGenerator(t *testing.T) {
	// Build a 2-hidden-node generator whose node 0 drives outputs 2 and 5
	// hard and node 1 drives nothing: mining must produce hpc2 AND hpc5.
	n := ml.New(1, []int{3, 2, 6}, ml.LeakyReLU, ml.Sigmoid)
	out := n.Layers[1]
	for o := 0; o < 6; o++ {
		out.W[o][0] = 0.01
		out.W[o][1] = 0.01
	}
	out.W[2][0] = 5
	out.W[5][0] = -4
	feats := Mine(n, 1, names)
	if len(feats) != 1 {
		t.Fatalf("mined %d features, want 1", len(feats))
	}
	f := feats[0]
	if f.A != 2 || f.B != 5 {
		t.Fatalf("mined (%d,%d), want (2,5)", f.A, f.B)
	}
	if !strings.Contains(f.Name, "AND") {
		t.Fatalf("name %q missing AND", f.Name)
	}
}

func TestMineDeduplicatesAndBounds(t *testing.T) {
	n := ml.New(2, []int{4, 8, 5}, ml.LeakyReLU, ml.Sigmoid)
	feats := Mine(n, 100, names)
	if len(feats) == 0 {
		t.Fatal("no features mined from random generator")
	}
	seen := map[[2]int]bool{}
	for _, f := range feats {
		if f.A >= f.B {
			t.Fatalf("unordered pair (%d,%d)", f.A, f.B)
		}
		k := [2]int{f.A, f.B}
		if seen[k] {
			t.Fatalf("duplicate pair %v", k)
		}
		seen[k] = true
	}
}

func TestMineSkipsExcludedFeatures(t *testing.T) {
	n := ml.New(3, []int{4, 8, 5}, ml.LeakyReLU, ml.Sigmoid)
	feats := Mine(n, 100, func(i int) (int, string) {
		if i < 3 {
			return -1, "" // excluded outputs
		}
		return i, fmt.Sprintf("hpc%d", i)
	})
	for _, f := range feats {
		if f.A < 3 || f.B < 3 {
			t.Fatalf("excluded feature used: %+v", f)
		}
	}
}

func TestMineShallowGeneratorReturnsNil(t *testing.T) {
	n := ml.New(1, []int{4, 2}, ml.Linear, ml.Sigmoid)
	if feats := Mine(n, 5, names); feats != nil {
		t.Fatalf("single-layer network mined %d features", len(feats))
	}
}

func TestEvalForms(t *testing.T) {
	f := ANDFeature{A: 0, B: 2}
	x := []float64{0.8, 0, 0.5}
	if got := f.Eval(x); got != 0.4 {
		t.Fatalf("Eval = %v, want 0.4", got)
	}
	th := []float64{0.5, 0.5, 0.4}
	if f.EvalBinary(x, th) != 1 {
		t.Fatal("binary AND should fire")
	}
	x[2] = 0.3
	if f.EvalBinary(x, th) != 0 {
		t.Fatal("binary AND should not fire")
	}
}

func TestAppend(t *testing.T) {
	base := []float64{1, 0.5, 0.2}
	feats := []ANDFeature{{A: 0, B: 1}, {A: 1, B: 2}}
	out := Append(base, feats)
	if len(out) != 5 {
		t.Fatalf("len = %d", len(out))
	}
	if out[3] != 0.5 || out[4] != 0.1 {
		t.Fatalf("engineered values = %v", out[3:])
	}
	// Base must be copied, not aliased.
	out[0] = 99
	if base[0] == 99 {
		t.Fatal("Append aliased the base vector")
	}
}

// TestMinedFeaturesTrackCoActivation trains a small AM-GAN on data where
// features 0 and 1 co-activate in the malicious class, then checks the
// mined feature set includes a pair touching those features — the paper's
// claim that generator internals surface security-relevant combinations.
func TestMinedFeaturesTrackCoActivation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var samples [][]float64
	var classes []int
	for i := 0; i < 120; i++ {
		v := make([]float64, 6)
		if i%2 == 0 { // "attack": features 0,1 fire together
			a := 0.6 + 0.4*rng.Float64()
			v[0], v[1] = a, a
		} else { // "benign": diffuse noise
			for j := range v {
				v[j] = rng.Float64() * 0.3
			}
		}
		samples = append(samples, v)
		classes = append(classes, i%2)
	}
	cfg := gan.DefaultConfig(6, 2)
	cfg.GenHidden = []int{12, 8}
	a := gan.New(cfg)
	a.Train(samples, classes, 30)
	feats := Mine(a.Generator(), 4, names)
	if len(feats) == 0 {
		t.Fatal("nothing mined")
	}
	found := false
	for _, f := range feats {
		if f.A == 0 || f.B == 0 || f.A == 1 || f.B == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("mined features %v ignore the co-activating pair", feats)
	}
}
