package dataset

import (
	"testing"

	"evax/internal/isa"
)

func TestSampleBlockRows(t *testing.T) {
	b := NewSampleBlock(3, 6)
	for i := 0; i < 4; i++ {
		if got := b.Extend(); got != i {
			t.Fatalf("Extend returned %d, want %d", got, i)
		}
		raw, der := b.RawRow(i), b.DerivedRow(i)
		for j := range raw {
			raw[j] = float64(10*i + j)
		}
		for j := range der {
			der[j] = float64(100*i + j)
		}
	}
	if b.Len() != 4 || b.RawDim() != 3 || b.DerivedDim() != 6 {
		t.Fatalf("geometry = (%d,%d,%d)", b.Len(), b.RawDim(), b.DerivedDim())
	}
	// Rows survive growth in the backing array.
	for i := 0; i < 4; i++ {
		if b.RawRow(i)[1] != float64(10*i+1) || b.DerivedRow(i)[5] != float64(100*i+5) {
			t.Fatalf("row %d content lost after growth", i)
		}
	}
	if data := b.DerivedData(); len(data) != 24 || data[6] != 100 {
		t.Fatalf("DerivedData wrong: len=%d", len(data))
	}
}

func TestSampleBlockRowViewsCapClamped(t *testing.T) {
	// Appending through a row view must copy, never clobber the next row.
	b := NewSampleBlock(2, 2)
	b.Extend()
	b.Extend()
	b.DerivedRow(1)[0] = 42
	grown := append(b.DerivedRow(0), -1)
	if b.DerivedRow(1)[0] != 42 {
		t.Fatal("append through row view clobbered the next row")
	}
	if grown[2] != -1 {
		t.Fatal("append result wrong")
	}
}

func TestRepackRebindsViews(t *testing.T) {
	mk := func(base float64) Sample {
		return Sample{
			Raw:     []float64{base, base + 1},
			Derived: []float64{base + 2, base + 3, base + 4},
			Class:   isa.ClassBenign,
			Program: "p",
		}
	}
	samples := []Sample{mk(0), mk(10), mk(20)}
	b := Repack(samples)
	if b.Len() != 3 || b.RawDim() != 2 || b.DerivedDim() != 3 {
		t.Fatalf("block geometry = (%d,%d,%d)", b.Len(), b.RawDim(), b.DerivedDim())
	}
	for i := range samples {
		want := float64(10 * i)
		if samples[i].Raw[0] != want || samples[i].Derived[2] != want+4 {
			t.Fatalf("sample %d values changed by Repack", i)
		}
		// The views must alias the block, so writes through one are
		// visible through the other.
		samples[i].Derived[0] = -1
		if b.DerivedRow(i)[0] != -1 {
			t.Fatalf("sample %d Derived not rebound into block", i)
		}
	}
	if Repack(nil) != nil {
		t.Fatal("Repack(nil) should be nil")
	}
}

func TestRepackRejectsRaggedRows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for ragged rows")
		}
	}()
	Repack([]Sample{
		{Raw: []float64{1}, Derived: []float64{1}},
		{Raw: []float64{1, 2}, Derived: []float64{1}},
	})
}
