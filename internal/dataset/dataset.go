// Package dataset collects labelled HPC samples from simulator runs and
// manages the corpus used to train and evaluate detectors: per-class
// splits, attack-category-holdout k-fold cross-validation (the paper's
// zero-day setting) and leakage-phase checkpointing (transmit/recover-phase
// samples of held-out attacks are excluded from test sets, per §VII).
package dataset

import (
	"fmt"
	"math/rand"

	"evax/internal/hpc"
	"evax/internal/isa"
	"evax/internal/sim"
)

// Sample is one labelled sampling window.
type Sample struct {
	// Raw holds the raw counter deltas (catalog-aligned); Derived the
	// expanded derived-statistic vector the detectors consume. Derived
	// values are max-normalized by the corpus normalizer.
	Raw     []float64
	Derived []float64

	Class     isa.Class
	Malicious bool
	Program   string
	// Phases flags which attack phases had micro-ops dispatched during
	// the window (bit i = isa.Phase(i)).
	Phases uint8
	// Window geometry.
	Instructions uint64
	Cycles       uint64
}

// HasPhase reports whether the window contained ops of phase p.
func (s *Sample) HasPhase(p isa.Phase) bool { return s.Phases&(1<<uint(p)) != 0 }

// TransmitOnly reports whether the window saw transmit/recover activity but
// no leak/mistrain/setup — the windows the k-fold test sets exclude for
// held-out attacks.
func (s *Sample) TransmitOnly() bool {
	active := s.Phases &^ (1 << uint(isa.PhaseNone))
	tx := uint8(1<<uint(isa.PhaseTransmit) | 1<<uint(isa.PhaseRecover))
	return active != 0 && active&^tx == 0
}

// Collect runs prog to completion (or maxInstr) on a fresh machine with the
// given config, sampling every interval instructions. Vectors are raw
// deltas; normalization happens corpus-wide afterwards.
func Collect(cfg sim.Config, prog *isa.Program, interval, maxInstr uint64) []Sample {
	m := sim.New(cfg, prog)
	cat := sim.CounterCatalog()
	sampler := hpc.NewSampler(cat, m, interval)
	exp := hpc.NewExpander(cat.Len())
	sampler.Take() // baseline
	prevPhases := m.PhaseDispatched()
	block := NewSampleBlock(cat.Len(), exp.Dim())
	scratch := make([]float64, cat.Len())
	var out []Sample
	take := func() {
		sm, ok := sampler.TakeInto(scratch)
		if !ok || sm.Instructions == 0 {
			return
		}
		cur := m.PhaseDispatched()
		var mask uint8
		for p := range cur {
			if cur[p] > prevPhases[p] {
				mask |= 1 << uint(p)
			}
		}
		prevPhases = cur
		i := block.Extend()
		copy(block.RawRow(i), sm.Values)
		exp.ExpandInto(block.DerivedRow(i), sm)
		out = append(out, Sample{
			Class:        prog.Class,
			Malicious:    prog.Class.Malicious(),
			Program:      prog.Name,
			Phases:       mask,
			Instructions: sm.Instructions,
			Cycles:       sm.Cycles,
		})
	}
	for !m.Done() && m.Instructions() < maxInstr {
		m.RunCycles(256)
		if sampler.Due() {
			take()
		}
	}
	take()
	// Bind after the final Extend: block growth may have moved the
	// backing arrays, so row views are only taken now.
	block.Bind(out)
	return out
}

// Dataset is a labelled corpus with a fitted normalizer over the derived
// feature space.
type Dataset struct {
	Samples []Sample
	// DerivedDim is the dimensionality of the derived feature space.
	DerivedDim int
	max        []float64
	block      *SampleBlock
}

// New builds a dataset from samples, fitting max-normalization over the
// derived vectors and normalizing them in place. The samples are repacked
// into one contiguous block (their Raw/Derived views are rebound), so the
// fit and the normalization are two sweeps over a flat array.
func New(samples []Sample) *Dataset {
	d := &Dataset{Samples: samples}
	if len(samples) == 0 {
		return d
	}
	d.block = Repack(samples)
	d.DerivedDim = d.block.DerivedDim()
	d.max = make([]float64, d.DerivedDim)
	data := d.block.DerivedData()
	for base := 0; base < len(data); base += d.DerivedDim {
		row := data[base : base+d.DerivedDim]
		for j, v := range row {
			if v > d.max[j] {
				d.max[j] = v
			}
		}
	}
	for base := 0; base < len(data); base += d.DerivedDim {
		d.NormalizeInPlace(data[base : base+d.DerivedDim])
	}
	return d
}

// Block exposes the contiguous backing storage (nil for an empty corpus).
func (d *Dataset) Block() *SampleBlock { return d.block }

// Maxima returns a copy of the per-dimension maxima the dataset normalizes
// with (the deployable half of the detection pipeline).
func (d *Dataset) Maxima() []float64 { return append([]float64(nil), d.max...) }

// FromMaxima builds an empty dataset carrying the given normalization
// maxima — a deserialized normalizer for online detection.
func FromMaxima(max []float64) *Dataset {
	return &Dataset{DerivedDim: len(max), max: append([]float64(nil), max...)}
}

// NormalizeInPlace scales a derived vector by the corpus maxima (clamped to
// [0,1]); vectors from generators or evasion tooling use the same scaling.
// Zero allocations — this sits between expand and score on the online path.
//
//evaxlint:hotpath
func (d *Dataset) NormalizeInPlace(v []float64) {
	for j := range v {
		if d.max[j] > 0 {
			x := v[j] / d.max[j]
			if x > 1 {
				x = 1
			}
			v[j] = x
		} else {
			v[j] = 0
		}
	}
}

// Classes returns the distinct classes present, benign first.
func (d *Dataset) Classes() []isa.Class {
	seen := map[isa.Class]bool{}
	var out []isa.Class
	if d.countClass(isa.ClassBenign) > 0 {
		out = append(out, isa.ClassBenign)
		seen[isa.ClassBenign] = true
	}
	for _, s := range d.Samples {
		if !seen[s.Class] {
			seen[s.Class] = true
			out = append(out, s.Class)
		}
	}
	return out
}

func (d *Dataset) countClass(c isa.Class) int {
	n := 0
	for i := range d.Samples {
		if d.Samples[i].Class == c {
			n++
		}
	}
	return n
}

// ByClass returns the indices of samples of class c.
func (d *Dataset) ByClass(c isa.Class) []int {
	var idx []int
	for i := range d.Samples {
		if d.Samples[i].Class == c {
			idx = append(idx, i)
		}
	}
	return idx
}

// Split holds train/test index sets.
type Split struct {
	Train, Test []int
	// HeldOut is the attack class excluded from training in a k-fold
	// zero-day split (ClassBenign for plain random splits).
	HeldOut isa.Class
}

// RandomSplit shuffles sample indices and splits trainFrac into train.
func (d *Dataset) RandomSplit(seed int64, trainFrac float64) Split {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(d.Samples))
	cut := int(trainFrac * float64(len(idx)))
	return Split{Train: idx[:cut], Test: idx[cut:]}
}

// KFoldByAttack builds one split per attack class present: that class's
// samples are removed from training entirely; its test set holds the
// class's non-transmit-phase windows (the paper excludes the
// recovery/transmission phase of held-out attacks) plus a benign test
// share for false-positive measurement.
func (d *Dataset) KFoldByAttack(seed int64) []Split {
	var folds []Split
	rng := rand.New(rand.NewSource(seed))
	benign := d.ByClass(isa.ClassBenign)
	for _, c := range d.Classes() {
		if c == isa.ClassBenign {
			continue
		}
		held := d.ByClass(c)
		var train, test []int
		for i := range d.Samples {
			if d.Samples[i].Class != c {
				train = append(train, i)
			}
		}
		for _, i := range held {
			if !d.Samples[i].TransmitOnly() {
				test = append(test, i)
			}
		}
		// Add a benign slice to the test set (drawn, not removed from
		// train: benign behaviour is not the held-out unknown).
		perm := rng.Perm(len(benign))
		nb := len(test)
		if nb > len(benign) {
			nb = len(benign)
		}
		for _, j := range perm[:nb] {
			test = append(test, benign[j])
		}
		folds = append(folds, Split{Train: train, Test: test, HeldOut: c})
	}
	return folds
}

// Stats summarizes the corpus.
func (d *Dataset) Stats() string {
	mal, ben := 0, 0
	for i := range d.Samples {
		if d.Samples[i].Malicious {
			mal++
		} else {
			ben++
		}
	}
	return fmt.Sprintf("dataset{%d samples: %d malicious, %d benign, %d classes, dim %d}",
		len(d.Samples), mal, ben, len(d.Classes()), d.DerivedDim)
}
