package dataset

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"
)

// The pinned corpus fingerprints below were captured on the row-oriented
// pipeline (closure-table ReadCounters, per-sample ExpandDerived
// allocations, per-row normalization) immediately before the columnar
// refactor. The columnar path — flat counter array, compiled Expander,
// SampleBlock storage, column-sweep normalization — must reproduce them
// bit-for-bit: the hash covers every raw delta, every derived value, all
// labels and window geometry, and (for the normalized hash) the fitted
// maxima.
const (
	goldenRawHash        = uint64(0x0e57f39fdc733db0)
	goldenNormalizedHash = uint64(0xbdac79897cd71939)
	goldenSamples        = 151
	goldenRawDim         = 115
	goldenDerivedDim     = 805
)

// corpusHash fingerprints samples: every float bit pattern plus labels.
func corpusHash(samples []Sample) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(u uint64) { binary.LittleEndian.PutUint64(buf[:], u); h.Write(buf[:]) }
	wf := func(f float64) { w64(math.Float64bits(f)) }
	for i := range samples {
		s := &samples[i]
		for _, v := range s.Raw {
			wf(v)
		}
		for _, v := range s.Derived {
			wf(v)
		}
		h.Write([]byte(s.Program))
		mal := byte(0)
		if s.Malicious {
			mal = 1
		}
		h.Write([]byte{byte(s.Class), mal, s.Phases})
		w64(s.Instructions)
		w64(s.Cycles)
	}
	return h.Sum64()
}

// normalizedHash fingerprints a fitted dataset: normalized rows + maxima.
func normalizedHash(d *Dataset) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wf := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	for i := range d.Samples {
		for _, v := range d.Samples[i].Derived {
			wf(v)
		}
	}
	for _, v := range d.Maxima() {
		wf(v)
	}
	return h.Sum64()
}

func TestCorpusGoldenHash(t *testing.T) {
	samples := CollectAll(quickCorpusOptions())
	if len(samples) != goldenSamples {
		t.Fatalf("corpus size = %d, want %d", len(samples), goldenSamples)
	}
	if rd, dd := len(samples[0].Raw), len(samples[0].Derived); rd != goldenRawDim || dd != goldenDerivedDim {
		t.Fatalf("dims = (%d,%d), want (%d,%d)", rd, dd, goldenRawDim, goldenDerivedDim)
	}
	if got := corpusHash(samples); got != goldenRawHash {
		t.Errorf("raw corpus hash = %#016x, want %#016x (columnar path diverged from pre-refactor reference)",
			got, goldenRawHash)
	}
	ds := New(samples)
	if got := normalizedHash(ds); got != goldenNormalizedHash {
		t.Errorf("normalized corpus hash = %#016x, want %#016x (normalization sweep diverged)",
			got, goldenNormalizedHash)
	}
}
