package dataset

import (
	"evax/internal/attacks"
	"evax/internal/isa"
	"evax/internal/sim"
	"evax/internal/workload"
)

// CorpusOptions parameterizes corpus generation. The defaults trade volume
// for runtime; experiments scale Seeds up for tighter statistics.
type CorpusOptions struct {
	// Seeds is the number of distinct seeded instances per program.
	Seeds int
	// Interval is the sampling cadence in instructions (paper: 100, 1k,
	// 10k, 100k).
	Interval uint64
	// MaxInstr caps each program run.
	MaxInstr uint64
	// Scale is passed to the benign program builders (loop trips).
	Scale int
	// AttackScale is passed to attack builders (leak rounds). Attack
	// programs are short per round, so this defaults much higher than
	// Scale to give the sampler enough windows.
	AttackScale int
	// Config overrides the machine configuration (zero value: default).
	Config *sim.Config
	// SeedOffset shifts every program seed, so two corpora with
	// different offsets contain disjoint program instances (train vs
	// evaluation corpora).
	SeedOffset int64
	// AttackFilter, when non-nil, selects which attack classes to
	// include. BenignOnly skips attacks entirely.
	AttackFilter func(isa.Class) bool
	BenignOnly   bool
}

// DefaultCorpusOptions returns a configuration that builds a corpus of a
// few thousand windows in a few seconds.
func DefaultCorpusOptions() CorpusOptions {
	return CorpusOptions{
		Seeds:       3,
		Interval:    2000,
		MaxInstr:    60_000,
		Scale:       3,
		AttackScale: 30,
	}
}

func (o CorpusOptions) config() sim.Config {
	if o.Config != nil {
		return *o.Config
	}
	return sim.DefaultConfig()
}

// BuildCorpus runs every benign workload and every attack category under
// the options, returning the dataset normalized by its own maxima.
func BuildCorpus(o CorpusOptions) *Dataset { return New(CollectAll(o)) }

// CollectAll gathers raw (unnormalized) samples for the options — callers
// evaluating against an existing training corpus normalize these with the
// training dataset's maxima instead of fitting new ones.
func CollectAll(o CorpusOptions) []Sample {
	var samples []Sample
	cfg := o.config()
	for _, w := range workload.All() {
		for s := 0; s < o.Seeds; s++ {
			p := w.Build(int64(s)*37+1+o.SeedOffset, o.Scale)
			samples = append(samples, Collect(cfg, p, o.Interval, o.MaxInstr)...)
		}
	}
	if !o.BenignOnly {
		for _, a := range attacks.All() {
			if o.AttackFilter != nil && !o.AttackFilter(a.Class) {
				continue
			}
			ascale := o.AttackScale
			if ascale < 1 {
				ascale = 1
			}
			for s := 0; s < o.Seeds; s++ {
				p := a.Build(int64(s)*41+11+o.SeedOffset, ascale)
				samples = append(samples, Collect(cfg, p, o.Interval, o.MaxInstr)...)
			}
		}
	}
	return samples
}
