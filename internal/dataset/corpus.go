package dataset

import (
	"context"

	"evax/internal/attacks"
	"evax/internal/isa"
	"evax/internal/runner"
	"evax/internal/sim"
	"evax/internal/workload"
)

// CorpusOptions parameterizes corpus generation. The defaults trade volume
// for runtime; experiments scale Seeds up for tighter statistics.
type CorpusOptions struct {
	// Seeds is the number of distinct seeded instances per program.
	Seeds int
	// Interval is the sampling cadence in instructions (paper: 100, 1k,
	// 10k, 100k).
	Interval uint64
	// MaxInstr caps each program run.
	MaxInstr uint64
	// Scale is passed to the benign program builders (loop trips).
	Scale int
	// AttackScale is passed to attack builders (leak rounds). Attack
	// programs are short per round, so this defaults much higher than
	// Scale to give the sampler enough windows.
	AttackScale int
	// Config overrides the machine configuration (zero value: default).
	Config *sim.Config
	// SeedOffset shifts every program seed, so two corpora with
	// different offsets contain disjoint program instances (train vs
	// evaluation corpora).
	SeedOffset int64
	// AttackFilter, when non-nil, selects which attack classes to
	// include. BenignOnly skips attacks entirely.
	AttackFilter func(isa.Class) bool
	BenignOnly   bool
	// Jobs is the worker count for corpus generation (see runner.Options):
	// 0 uses GOMAXPROCS, 1 is the sequential reference ordering. Samples
	// are merged in job-enumeration order, so the corpus is byte-identical
	// for every worker count.
	Jobs int
	// Progress, when non-nil, is called after each completed generation job
	// with (completed, total). It runs on worker goroutines, so it must be
	// safe for concurrent use; the cmds use it for progress lines, and the
	// fault-injection tests use it to kill a campaign at an exact point.
	Progress func(done, total int)
}

// DefaultCorpusOptions returns a configuration that builds a corpus of a
// few thousand windows in a few seconds.
func DefaultCorpusOptions() CorpusOptions {
	return CorpusOptions{
		Seeds:       3,
		Interval:    2000,
		MaxInstr:    60_000,
		Scale:       3,
		AttackScale: 30,
	}
}

func (o CorpusOptions) config() sim.Config {
	if o.Config != nil {
		return *o.Config
	}
	return sim.DefaultConfig()
}

// BuildCorpus runs every benign workload and every attack category under
// the options, returning the dataset normalized by its own maxima.
func BuildCorpus(o CorpusOptions) *Dataset { return New(CollectAll(o)) }

// seedDomain versions the corpus seed derivation. It is part of the corpus
// identity: bumping it regenerates every program instance (train AND eval,
// which stay disjoint via SeedOffset), so recorded experiment numbers only
// compare within one domain version.
const seedDomain = "corpus/v1/"

// collectJob is one (program, seed) unit of corpus generation. The seed is
// derived from the program's registry name, the seed index, and the corpus
// offset via a stable hash, so jobs are self-contained: no job's identity
// depends on enumeration position or on any other job.
type collectJob struct {
	name  string
	build func(seed int64, scale int) *isa.Program
	seed  int64
	scale int
}

// enumerateJobs lists the corpus's (program, seed) jobs in the canonical
// order: every benign workload, then every selected attack, seeds in
// ascending index order. CollectAll merges samples in exactly this order.
func enumerateJobs(o CorpusOptions) []collectJob {
	var jobs []collectJob
	for _, w := range workload.All() {
		for s := 0; s < o.Seeds; s++ {
			jobs = append(jobs, collectJob{
				name:  w.Name,
				build: w.Build,
				seed:  runner.DeriveSeed(seedDomain+"workload/"+w.Name, s, o.SeedOffset),
				scale: o.Scale,
			})
		}
	}
	if !o.BenignOnly {
		ascale := o.AttackScale
		if ascale < 1 {
			ascale = 1
		}
		for _, a := range attacks.All() {
			if o.AttackFilter != nil && !o.AttackFilter(a.Class) {
				continue
			}
			for s := 0; s < o.Seeds; s++ {
				jobs = append(jobs, collectJob{
					name:  a.Name,
					build: a.Build,
					seed:  runner.DeriveSeed(seedDomain+"attack/"+a.Name, s, o.SeedOffset),
					scale: ascale,
				})
			}
		}
	}
	return jobs
}

// CollectAll gathers raw (unnormalized) samples for the options — callers
// evaluating against an existing training corpus normalize these with the
// training dataset's maxima instead of fitting new ones. Jobs fan out
// across o.Jobs workers; samples merge in enumeration order, so the result
// is identical to a sequential run for any worker count.
func CollectAll(o CorpusOptions) []Sample {
	out, _, err := CollectAllCtx(context.Background(), o, nil)
	if err != nil {
		// Unreachable: with a background context, no journal, and jobs that
		// never return errors, CollectAllCtx cannot fail (panics re-raise).
		panic(err)
	}
	return out
}
