package dataset

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"evax/internal/safeio"
)

// Binary row codec for SampleBlock rows. One encoded row carries the window
// geometry (instructions, cycles) followed by the raw counter deltas as
// IEEE-754 bit patterns, little-endian. The same codec backs the online
// serving protocol's sample frames (internal/serve) and the recorded replay
// corpora evaxd -replay and evaxload consume, so a corpus recorded once is
// replayed through exactly the bytes a live client would have streamed.
//
// Decoding is hostile-input safe: every length is checked before any read,
// and malformed input returns an error — never a panic (serve.FuzzDecodeFrame
// drives this path with arbitrary bytes).

// RowWireSize returns the encoded size of a row of rawDim counters.
func RowWireSize(rawDim int) int { return 8 + 8 + 8*rawDim }

// AppendRow appends the wire encoding of one counter row to dst: two uint64
// window lengths, then each raw value's float64 bit pattern, little-endian.
func AppendRow(dst []byte, instructions, cycles uint64, raw []float64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, instructions)
	dst = binary.LittleEndian.AppendUint64(dst, cycles)
	for _, v := range raw {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeRowInto parses a row encoded by AppendRow from the front of b,
// writing len(raw) counter values into raw and returning the unconsumed
// tail. Zero allocations; the bit patterns round-trip exactly.
func DecodeRowInto(b []byte, raw []float64) (instructions, cycles uint64, rest []byte, err error) {
	need := RowWireSize(len(raw))
	if len(b) < need {
		return 0, 0, nil, fmt.Errorf("dataset: row truncated: %d bytes for a %d-counter row (need %d)",
			len(b), len(raw), need)
	}
	instructions = binary.LittleEndian.Uint64(b)
	cycles = binary.LittleEndian.Uint64(b[8:])
	for i := range raw {
		raw[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[16+8*i:]))
	}
	return instructions, cycles, b[need:], nil
}

// corpusMagic identifies a recorded replay corpus (version 1).
var corpusMagic = [8]byte{'E', 'V', 'A', 'X', 'C', 'O', 'R', '1'}

// maxCorpusRows bounds how many rows ReadCorpusFile will allocate for, so a
// corrupt header cannot demand an absurd allocation.
const maxCorpusRows = 1 << 24

// MarshalCorpus encodes samples as a replay corpus: magic, raw dimensionality,
// row count, then per row a label byte (bit 0: malicious) and the AppendRow
// encoding of the raw counter row. Derived vectors are not stored — the online
// scoring path recomputes the expansion exactly as the offline one does.
func MarshalCorpus(samples []Sample) ([]byte, error) {
	rawDim := 0
	if len(samples) > 0 {
		rawDim = len(samples[0].Raw)
	}
	out := append([]byte(nil), corpusMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(rawDim))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(samples)))
	for i := range samples {
		if len(samples[i].Raw) != rawDim {
			return nil, fmt.Errorf("dataset: corpus row %d has %d counters, row 0 has %d",
				i, len(samples[i].Raw), rawDim)
		}
		var label byte
		if samples[i].Malicious {
			label = 1
		}
		out = append(out, label)
		out = AppendRow(out, samples[i].Instructions, samples[i].Cycles, samples[i].Raw)
	}
	return out, nil
}

// UnmarshalCorpus decodes a corpus encoded by MarshalCorpus. The returned
// samples carry Raw, Instructions, Cycles and Malicious; their rows are views
// into one contiguous SampleBlock, like every other corpus in the repo.
// Malformed input returns an error, never a panic.
func UnmarshalCorpus(data []byte) ([]Sample, error) {
	if len(data) < len(corpusMagic)+8 {
		return nil, fmt.Errorf("dataset: corpus header truncated (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != corpusMagic {
		return nil, fmt.Errorf("dataset: not a replay corpus (bad magic %q)", data[:8])
	}
	rawDim := int(binary.LittleEndian.Uint32(data[8:]))
	rows := int(binary.LittleEndian.Uint32(data[12:]))
	if rows < 0 || rows > maxCorpusRows || rawDim < 0 {
		return nil, fmt.Errorf("dataset: corpus header claims %d rows of %d counters", rows, rawDim)
	}
	rest := data[16:]
	if need := rows * (1 + RowWireSize(rawDim)); len(rest) != need {
		return nil, fmt.Errorf("dataset: corpus body is %d bytes, header claims %d rows of %d counters (%d bytes)",
			len(rest), rows, rawDim, need)
	}
	block := NewSampleBlock(rawDim, 0)
	samples := make([]Sample, rows)
	for i := 0; i < rows; i++ {
		label := rest[0]
		rest = rest[1:]
		ri := block.Extend()
		instr, cyc, tail, err := DecodeRowInto(rest, block.RawRow(ri))
		if err != nil {
			return nil, fmt.Errorf("dataset: corpus row %d: %w", i, err)
		}
		rest = tail
		samples[i] = Sample{
			Malicious:    label&1 != 0,
			Instructions: instr,
			Cycles:       cyc,
		}
	}
	block.Bind(samples)
	return samples, nil
}

// WriteCorpusFile persists a replay corpus crash-safely.
func WriteCorpusFile(path string, samples []Sample) error {
	data, err := MarshalCorpus(samples)
	if err != nil {
		return err
	}
	return safeio.WriteFile(path, data, 0o644)
}

// ReadCorpusFile loads a corpus written by WriteCorpusFile.
func ReadCorpusFile(path string) ([]Sample, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	samples, err := UnmarshalCorpus(data)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading %s: %w", path, err)
	}
	return samples, nil
}
