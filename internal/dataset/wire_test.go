package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

func TestRowWireRoundTrip(t *testing.T) {
	raw := []float64{0, 1.5, math.Pi, -3, 1e308, math.SmallestNonzeroFloat64}
	b := AppendRow(nil, 12345, 67890, raw)
	if len(b) != RowWireSize(len(raw)) {
		t.Fatalf("encoded %d bytes, RowWireSize says %d", len(b), RowWireSize(len(raw)))
	}
	got := make([]float64, len(raw))
	instr, cycles, rest, err := DecodeRowInto(b, got)
	if err != nil {
		t.Fatal(err)
	}
	if instr != 12345 || cycles != 67890 {
		t.Fatalf("decoded instr=%d cycles=%d", instr, cycles)
	}
	if len(rest) != 0 {
		t.Fatalf("decoder left %d bytes", len(rest))
	}
	for i := range raw {
		if math.Float64bits(raw[i]) != math.Float64bits(got[i]) {
			t.Fatalf("counter %d: %v != %v (bit-level)", i, got[i], raw[i])
		}
	}
}

func TestDecodeRowIntoTruncated(t *testing.T) {
	raw := []float64{1, 2, 3}
	b := AppendRow(nil, 1, 2, raw)
	got := make([]float64, len(raw))
	for cut := 0; cut < len(b); cut++ {
		if _, _, _, err := DecodeRowInto(b[:cut], got); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

// wireTestSamples builds a tiny two-class corpus without a simulator run.
func wireTestSamples(rows, rawDim int) []Sample {
	out := make([]Sample, rows)
	for i := range out {
		raw := make([]float64, rawDim)
		for j := range raw {
			raw[j] = float64(i*rawDim+j) * 1.25
		}
		out[i] = Sample{
			Raw:          raw,
			Malicious:    i%3 == 0,
			Instructions: uint64(1000 + i),
			Cycles:       uint64(2000 + i),
		}
	}
	return out
}

func TestCorpusRoundTrip(t *testing.T) {
	samples := wireTestSamples(17, 5)
	data, err := MarshalCorpus(samples)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCorpus(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(samples))
	}
	for i := range samples {
		if got[i].Malicious != samples[i].Malicious ||
			got[i].Instructions != samples[i].Instructions ||
			got[i].Cycles != samples[i].Cycles {
			t.Fatalf("sample %d metadata diverged: %+v", i, got[i])
		}
		for j := range samples[i].Raw {
			if math.Float64bits(got[i].Raw[j]) != math.Float64bits(samples[i].Raw[j]) {
				t.Fatalf("sample %d counter %d diverged", i, j)
			}
		}
	}
	// Re-encoding the decoded corpus must be byte-identical.
	again, err := MarshalCorpus(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encoded corpus differs from the original encoding")
	}
}

func TestCorpusFileRoundTrip(t *testing.T) {
	samples := wireTestSamples(9, 4)
	path := filepath.Join(t.TempDir(), "corpus.bin")
	if err := WriteCorpusFile(path, samples); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCorpusFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("read %d samples, want %d", len(got), len(samples))
	}
}

func TestUnmarshalCorpusRejectsGarbage(t *testing.T) {
	samples := wireTestSamples(4, 3)
	data, err := MarshalCorpus(samples)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"short-magic": data[:4],
		"bad-magic":   append([]byte("NOTEVAX1"), data[8:]...),
		"truncated":   data[:len(data)-3],
		"trailing":    append(append([]byte{}, data...), 0xAB),
	}
	for name, b := range cases {
		if _, err := UnmarshalCorpus(b); err == nil {
			t.Errorf("%s: corrupt corpus accepted", name)
		}
	}
}
