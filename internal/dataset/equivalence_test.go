package dataset

import (
	"reflect"
	"runtime"
	"testing"

	"evax/internal/isa"
)

// quickCorpusOptions is a reduced configuration shared by the equivalence
// tests: two attack classes, two seeds, short runs — enough jobs to exercise
// real fan-out without dominating the suite's wall-clock.
func quickCorpusOptions() CorpusOptions {
	return CorpusOptions{
		Seeds:       2,
		Interval:    2000,
		MaxInstr:    20_000,
		Scale:       1,
		AttackScale: 20,
		AttackFilter: func(c isa.Class) bool {
			return c == isa.ClassMeltdown || c == isa.ClassSpectrePHT
		},
	}
}

// TestCollectAllParallelEquivalence is the runner determinism contract at
// the corpus layer: the sample stream must be byte-identical to the
// sequential reference (Jobs == 1) for every worker count, including worker
// counts above the job count and above GOMAXPROCS.
func TestCollectAllParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build")
	}
	o := quickCorpusOptions()
	o.Jobs = 1
	ref := CollectAll(o)
	if len(ref) == 0 {
		t.Fatal("empty reference corpus")
	}
	for _, jobs := range []int{2, 4, runtime.GOMAXPROCS(0), 1000} {
		o.Jobs = jobs
		if got := CollectAll(o); !reflect.DeepEqual(ref, got) {
			t.Fatalf("corpus at %d workers diverged from the sequential reference", jobs)
		}
	}
}

// TestBuildCorpusParallelEquivalence extends the contract through
// normalization: the fitted maxima and the normalized vectors must also be
// independent of the worker count.
func TestBuildCorpusParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build")
	}
	o := quickCorpusOptions()
	o.Jobs = 1
	ref := BuildCorpus(o)
	o.Jobs = 4
	got := BuildCorpus(o)
	if !reflect.DeepEqual(ref.Maxima(), got.Maxima()) {
		t.Fatal("normalizer maxima depend on worker count")
	}
	if !reflect.DeepEqual(ref.Samples, got.Samples) {
		t.Fatal("normalized corpus depends on worker count")
	}
}

// TestCorpusSeedsCollisionFree pins the fix for the old stride scheme
// (seed*37+1 for workloads, seed*41+11 for attacks), whose arithmetic
// progressions collide across SeedOffset shifts: with hash-derived seeds,
// every (program, seed index, offset) combination must be distinct, so the
// train and eval corpora share no program instance.
func TestCorpusSeedsCollisionFree(t *testing.T) {
	o := DefaultCorpusOptions()
	o.Seeds = 8
	seen := map[int64]string{}
	for _, off := range []int64{0, 7000, 9000} {
		o.SeedOffset = off
		for _, j := range enumerateJobs(o) {
			if j.seed < 0 {
				t.Fatalf("negative seed %d for %s", j.seed, j.name)
			}
			if prev, dup := seen[j.seed]; dup {
				t.Fatalf("seed %d collides: %s and %s (offset %d)", j.seed, prev, j.name, off)
			}
			seen[j.seed] = j.name
		}
	}
}
