package dataset

import "fmt"

// SampleBlock stores a corpus's numeric payload in two contiguous backing
// arrays — one for raw counter rows, one for derived rows — with every
// Sample.Raw/Derived a view into them. One block per corpus means corpus
// construction does O(1) allocations instead of two per sample, corpus
// normalization is a sweep over a single flat array, and merging per-job
// batches from the parallel runner is block concatenation.
//
// Row views are capacity-clamped (three-index slices), so an append through
// a view can never silently clobber the next row in the block.
type SampleBlock struct {
	rawDim, derDim int
	raw, derived   []float64
	rows           int
}

// NewSampleBlock creates an empty block for rows of the given dimensions.
func NewSampleBlock(rawDim, derDim int) *SampleBlock {
	return &SampleBlock{rawDim: rawDim, derDim: derDim}
}

// Len returns the number of rows.
func (b *SampleBlock) Len() int { return b.rows }

// RawDim returns the raw row width.
func (b *SampleBlock) RawDim() int { return b.rawDim }

// DerivedDim returns the derived row width.
func (b *SampleBlock) DerivedDim() int { return b.derDim }

// Extend appends one zeroed row to both backing arrays and returns its
// index. Growth may move the backing arrays, so views from RawRow and
// DerivedRow are only stable once the block stops growing (Bind rebinds
// sample views after the final Extend).
func (b *SampleBlock) Extend() int {
	i := b.rows
	b.rows++
	b.raw = append(b.raw, make([]float64, b.rawDim)...)
	b.derived = append(b.derived, make([]float64, b.derDim)...)
	return i
}

// RawRow returns the raw-counter view of row i (capacity-clamped).
func (b *SampleBlock) RawRow(i int) []float64 {
	o := i * b.rawDim
	return b.raw[o : o+b.rawDim : o+b.rawDim]
}

// DerivedRow returns the derived-vector view of row i (capacity-clamped).
func (b *SampleBlock) DerivedRow(i int) []float64 {
	o := i * b.derDim
	return b.derived[o : o+b.derDim : o+b.derDim]
}

// DerivedData returns the whole derived backing array (rows*DerivedDim,
// row-major) — the corpus normalizer sweeps this flat, one pass for maxima
// and one for scaling, instead of chasing per-sample slices.
func (b *SampleBlock) DerivedData() []float64 { return b.derived[: b.rows*b.derDim : b.rows*b.derDim] }

// RawData returns the whole raw backing array (rows*RawDim, row-major) —
// the fused kernel's batch entry points sweep raw rows contiguously.
func (b *SampleBlock) RawData() []float64 { return b.raw[: b.rows*b.rawDim : b.rows*b.rawDim] }

// Bind points each sample's Raw/Derived at its row view. Call once the
// block is fully grown; samples[i] must correspond to row i.
func (b *SampleBlock) Bind(samples []Sample) {
	if len(samples) != b.rows {
		panic(fmt.Sprintf("dataset: Bind %d samples to %d rows", len(samples), b.rows))
	}
	for i := range samples {
		samples[i].Raw = b.RawRow(i)
		samples[i].Derived = b.DerivedRow(i)
	}
}

// Repack copies the samples' vectors into one fresh contiguous block and
// rebinds their views into it. This is the corpus merge: the parallel
// runner returns per-job batches (each backed by its own block), and the
// concatenated corpus becomes a single block in job order. Returns nil for
// an empty slice.
func Repack(samples []Sample) *SampleBlock {
	if len(samples) == 0 {
		return nil
	}
	b := &SampleBlock{
		rawDim:  len(samples[0].Raw),
		derDim:  len(samples[0].Derived),
		rows:    len(samples),
		raw:     make([]float64, len(samples)*len(samples[0].Raw)),
		derived: make([]float64, len(samples)*len(samples[0].Derived)),
	}
	for i := range samples {
		if len(samples[i].Raw) != b.rawDim || len(samples[i].Derived) != b.derDim {
			panic(fmt.Sprintf("dataset: Repack row %d dims (%d,%d) != (%d,%d)",
				i, len(samples[i].Raw), len(samples[i].Derived), b.rawDim, b.derDim))
		}
		copy(b.RawRow(i), samples[i].Raw)
		copy(b.DerivedRow(i), samples[i].Derived)
	}
	b.Bind(samples)
	return b
}
