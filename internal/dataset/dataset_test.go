package dataset

import (
	"testing"

	"evax/internal/attacks"
	"evax/internal/isa"
	"evax/internal/sim"
	"evax/internal/workload"
)

func TestCollectBenign(t *testing.T) {
	p := workload.Compress(1, 4)
	samples := Collect(sim.DefaultConfig(), p, 2000, 40_000)
	if len(samples) < 5 {
		t.Fatalf("only %d samples", len(samples))
	}
	for _, s := range samples {
		if s.Malicious || s.Class != isa.ClassBenign {
			t.Fatal("benign mislabelled")
		}
		if len(s.Raw) != sim.CounterCatalog().Len() {
			t.Fatalf("raw dim %d", len(s.Raw))
		}
		if len(s.Derived) != 7*len(s.Raw) {
			t.Fatalf("derived dim %d", len(s.Derived))
		}
		if s.Instructions == 0 {
			t.Fatal("zero-instruction window")
		}
	}
}

func TestCollectAttackPhases(t *testing.T) {
	p := attacks.Meltdown(11, 30)
	samples := Collect(sim.DefaultConfig(), p, 1000, 80_000)
	if len(samples) < 5 {
		t.Fatalf("only %d samples", len(samples))
	}
	leak := 0
	for _, s := range samples {
		if !s.Malicious {
			t.Fatal("attack sample not malicious")
		}
		if s.HasPhase(isa.PhaseLeak) {
			leak++
		}
	}
	if leak == 0 {
		t.Fatal("no window flagged with the leak phase")
	}
}

func TestNewNormalizes(t *testing.T) {
	samples := []Sample{
		{Derived: []float64{2, 10}},
		{Derived: []float64{4, 0}},
	}
	d := New(samples)
	if d.Samples[0].Derived[0] != 0.5 || d.Samples[1].Derived[0] != 1 {
		t.Fatalf("normalization wrong: %v %v", d.Samples[0].Derived, d.Samples[1].Derived)
	}
	// Same scaling applies to external vectors.
	v := []float64{8, 5}
	d.NormalizeInPlace(v)
	if v[0] != 1 || v[1] != 0.5 {
		t.Fatalf("external normalize wrong: %v", v)
	}
}

func TestHasPhase(t *testing.T) {
	s := Sample{Phases: 1<<uint(isa.PhaseSetup) | 1<<uint(isa.PhaseLeak)}
	for _, tc := range []struct {
		p    isa.Phase
		want bool
	}{
		{isa.PhaseNone, false},
		{isa.PhaseSetup, true},
		{isa.PhaseMistrain, false},
		{isa.PhaseLeak, true},
		{isa.PhaseTransmit, false},
		{isa.PhaseRecover, false},
	} {
		if got := s.HasPhase(tc.p); got != tc.want {
			t.Errorf("HasPhase(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if (&Sample{}).HasPhase(isa.PhaseNone) {
		t.Error("empty mask claims PhaseNone")
	}
}

// TestCollectPhaseDeltaMask drives Collect over a program with three
// well-separated phase sections and checks the per-window delta masking: a
// window's mask flags exactly the phases whose dispatch counters advanced
// during that window, so early windows must not carry late-phase bits and
// a finished phase must never reappear.
func TestCollectPhaseDeltaMask(t *testing.T) {
	b := isa.NewBuilder("phasemask", isa.ClassMeltdown)
	section := func(p isa.Phase, label string, trips int64) {
		// Phase counters tick at dispatch, which includes wrong-path ops:
		// a mispredicted loop exit fetches straight-line into the next
		// section. Pad past the ROB depth with untagged nops so speculation
		// cannot carry one section's bits into another's windows.
		b.SetPhase(isa.PhaseNone)
		for i := 0; i < 256; i++ {
			b.Nop()
		}
		b.SetPhase(p)
		b.Li(isa.R1, 0)
		b.Li(isa.R2, trips)
		b.Label(label)
		b.Addi(isa.R1, isa.R1, 1)
		b.Br(isa.CondLT, isa.R1, isa.R2, label)
	}
	section(isa.PhaseSetup, "setup", 3000)
	section(isa.PhaseLeak, "leak", 3000)
	section(isa.PhaseTransmit, "tx", 3000)
	samples := Collect(sim.DefaultConfig(), b.MustBuild(), 1000, 100_000)
	if len(samples) < 9 {
		t.Fatalf("only %d windows", len(samples))
	}
	var union uint8
	for _, s := range samples {
		union |= s.Phases
	}
	for _, p := range []isa.Phase{isa.PhaseSetup, isa.PhaseLeak, isa.PhaseTransmit} {
		if union&(1<<uint(p)) == 0 {
			t.Fatalf("phase %v never flagged across %d windows", p, len(samples))
		}
	}
	first, last := samples[0], samples[len(samples)-1]
	if !first.HasPhase(isa.PhaseSetup) || first.HasPhase(isa.PhaseTransmit) {
		t.Fatalf("first window mask %06b: want setup without transmit", first.Phases)
	}
	if !last.HasPhase(isa.PhaseTransmit) || last.HasPhase(isa.PhaseSetup) {
		t.Fatalf("last window mask %06b: want transmit without setup", last.Phases)
	}
	lastSetup, firstTx := -1, -1
	for i, s := range samples {
		if s.HasPhase(isa.PhaseSetup) {
			lastSetup = i
		}
		if firstTx < 0 && s.HasPhase(isa.PhaseTransmit) {
			firstTx = i
		}
	}
	if lastSetup >= firstTx {
		t.Fatalf("setup flagged through window %d but transmit starts at %d: delta masking broken",
			lastSetup, firstTx)
	}
}

func TestTransmitOnly(t *testing.T) {
	s := Sample{Phases: 1<<uint(isa.PhaseTransmit) | 1<<uint(isa.PhaseNone)}
	if !s.TransmitOnly() {
		t.Fatal("transmit-only window not detected")
	}
	s.Phases |= 1 << uint(isa.PhaseLeak)
	if s.TransmitOnly() {
		t.Fatal("leak window misclassified as transmit-only")
	}
	if (&Sample{Phases: 1 << uint(isa.PhaseNone)}).TransmitOnly() {
		t.Fatal("phase-free window misclassified")
	}
	if !(&Sample{Phases: 1<<uint(isa.PhaseTransmit) | 1<<uint(isa.PhaseRecover)}).TransmitOnly() {
		t.Fatal("transmit+recover window not detected")
	}
	if (&Sample{}).TransmitOnly() {
		t.Fatal("empty mask misclassified as transmit-only")
	}
}

func TestRandomSplit(t *testing.T) {
	samples := make([]Sample, 100)
	for i := range samples {
		samples[i].Derived = []float64{float64(i)}
	}
	d := New(samples)
	sp := d.RandomSplit(1, 0.8)
	if len(sp.Train) != 80 || len(sp.Test) != 20 {
		t.Fatalf("split sizes %d/%d", len(sp.Train), len(sp.Test))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, sp.Train...), sp.Test...) {
		if seen[i] {
			t.Fatal("index appears twice")
		}
		seen[i] = true
	}
}

func TestKFoldByAttack(t *testing.T) {
	var samples []Sample
	add := func(c isa.Class, n int, phases uint8) {
		for i := 0; i < n; i++ {
			samples = append(samples, Sample{
				Derived:   []float64{float64(i)},
				Class:     c,
				Malicious: c.Malicious(),
				Phases:    phases,
			})
		}
	}
	add(isa.ClassBenign, 30, 1<<uint(isa.PhaseNone))
	add(isa.ClassMeltdown, 10, 1<<uint(isa.PhaseLeak))
	add(isa.ClassSpectrePHT, 10, 1<<uint(isa.PhaseLeak))
	add(isa.ClassSpectrePHT, 4, 1<<uint(isa.PhaseTransmit)) // excluded from test
	d := New(samples)
	folds := d.KFoldByAttack(1)
	if len(folds) != 2 {
		t.Fatalf("folds = %d, want 2", len(folds))
	}
	for _, f := range folds {
		for _, i := range f.Train {
			if d.Samples[i].Class == f.HeldOut {
				t.Fatalf("held-out class %v leaked into training", f.HeldOut)
			}
		}
		attackTest := 0
		for _, i := range f.Test {
			s := d.Samples[i]
			if s.Class == f.HeldOut {
				attackTest++
				if s.TransmitOnly() {
					t.Fatal("transmit-only window in held-out test set")
				}
			} else if s.Class != isa.ClassBenign {
				t.Fatal("foreign attack class in test set")
			}
		}
		if attackTest == 0 {
			t.Fatal("no held-out samples in test set")
		}
	}
}

func TestBuildCorpusSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build")
	}
	o := CorpusOptions{
		Seeds:       1,
		Interval:    2000,
		MaxInstr:    20_000,
		Scale:       1,
		AttackScale: 20,
		AttackFilter: func(c isa.Class) bool {
			return c == isa.ClassMeltdown || c == isa.ClassSpectrePHT
		},
	}
	d := BuildCorpus(o)
	if len(d.Samples) < 50 {
		t.Fatalf("corpus too small: %s", d.Stats())
	}
	classes := d.Classes()
	if classes[0] != isa.ClassBenign || len(classes) != 3 {
		t.Fatalf("classes = %v", classes)
	}
	// All derived values normalized.
	for _, s := range d.Samples {
		for _, v := range s.Derived {
			if v < 0 || v > 1 {
				t.Fatalf("unnormalized value %v", v)
			}
		}
	}
}
