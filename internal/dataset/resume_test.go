package dataset

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"evax/internal/checkpoint"
)

// TestCorpusKillAndResumeGolden is the repository's kill-and-resume
// acceptance test: a corpus campaign killed mid-run by injected
// cancellation, then resumed from its checkpoint journal, must produce a
// corpus whose FNV-1a fingerprint is bit-identical to an uninterrupted
// run — for multiple worker counts.
func TestCorpusKillAndResumeGolden(t *testing.T) {
	o := quickCorpusOptions()
	ref := CollectAll(o)
	refHash := corpusHash(ref)
	key := o.CampaignKey()

	for _, jobs := range []int{2, 4} {
		path := filepath.Join(t.TempDir(), "corpus.journal")
		ko := o
		ko.Jobs = jobs
		ctx, cancel := context.WithCancel(context.Background())
		ko.Progress = func(done, total int) {
			if done >= 3 && done < total {
				cancel() // the injected kill, mid-campaign
			}
		}
		j, err := checkpoint.Open(path, key)
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := CollectAllCtx(ctx, ko, j)
		cancel()
		j.Close()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: interrupted campaign: err = %v, want Canceled", jobs, err)
		}
		if rep.CompletedCount() == 0 {
			t.Fatalf("jobs=%d: kill landed before any job completed", jobs)
		}

		// Resume: journal slots are decoded, the rest re-simulated.
		ro := o
		ro.Jobs = jobs
		j2, err := checkpoint.Open(path, key)
		if err != nil {
			t.Fatalf("jobs=%d: reopen journal: %v", jobs, err)
		}
		if j2.Len() != rep.CompletedCount() {
			t.Fatalf("jobs=%d: journal holds %d slots, interrupted report says %d",
				jobs, j2.Len(), rep.CompletedCount())
		}
		resumed, rep2, err := CollectAllCtx(context.Background(), ro, j2)
		j2.Close()
		if err != nil {
			t.Fatalf("jobs=%d: resume: %v", jobs, err)
		}
		if rep2.CompletedCount() != len(rep2.Completed) {
			t.Fatalf("jobs=%d: resume left %d slots incomplete",
				jobs, len(rep2.Completed)-rep2.CompletedCount())
		}
		if got := corpusHash(resumed); got != refHash {
			t.Fatalf("jobs=%d: resumed corpus hash %#x != uninterrupted %#x — resume is not bit-identical",
				jobs, got, refHash)
		}
	}
}

// TestCampaignKeySeparatesCampaigns: option changes that alter the job list
// or simulation parameters must change the key (wrong-journal resume is
// refused by checkpoint.Open), while worker count must not.
func TestCampaignKeySeparatesCampaigns(t *testing.T) {
	base := quickCorpusOptions()
	key := base.CampaignKey()

	jobsOnly := base
	jobsOnly.Jobs = 7
	if jobsOnly.CampaignKey() != key {
		t.Fatal("worker count changed the campaign key; resume across -jobs would break")
	}

	mutations := map[string]CorpusOptions{}
	m := base
	m.Seeds++
	mutations["seeds"] = m
	m = base
	m.Interval *= 2
	mutations["interval"] = m
	m = base
	m.MaxInstr += 1000
	mutations["maxinstr"] = m
	m = base
	m.SeedOffset += 11
	mutations["seedoffset"] = m
	m = base
	m.BenignOnly = true
	mutations["benignonly"] = m
	for name, mo := range mutations {
		if mo.CampaignKey() == key {
			t.Fatalf("changing %s kept the campaign key; a stale journal would be resumed", name)
		}
	}
}

// TestCorpusResumeAcrossWorkerCounts: a journal written under one worker
// count resumes under another — the campaign key is worker-independent and
// slots are index-addressed.
func TestCorpusResumeAcrossWorkerCounts(t *testing.T) {
	o := quickCorpusOptions()
	refHash := corpusHash(CollectAll(o))
	path := filepath.Join(t.TempDir(), "corpus.journal")
	key := o.CampaignKey()

	ko := o
	ko.Jobs = 4
	ctx, cancel := context.WithCancel(context.Background())
	ko.Progress = func(done, total int) {
		if done >= 2 && done < total {
			cancel()
		}
	}
	j, err := checkpoint.Open(path, key)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = CollectAllCtx(ctx, ko, j)
	cancel()
	j.Close()
	if err == nil {
		t.Fatal("campaign was not interrupted")
	}

	ro := o
	ro.Jobs = 2 // resume under a different worker count
	j2, err := checkpoint.Open(path, key)
	if err != nil {
		t.Fatal(err)
	}
	resumed, _, err := CollectAllCtx(context.Background(), ro, j2)
	j2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if corpusHash(resumed) != refHash {
		t.Fatal("resume under a different worker count diverged")
	}
}
