package dataset

import (
	"context"
	"fmt"
	"hash/fnv"

	"evax/internal/checkpoint"
	"evax/internal/runner"
)

// CampaignKey identifies this corpus campaign for checkpoint resume: two
// option sets share a key exactly when they enumerate the same jobs under
// the same simulation parameters, so a journal can never be resumed into a
// campaign it was not recorded for. The key is derived from the enumerated
// job list (names, seeds, scales) rather than from the options struct —
// AttackFilter is a function and has no stable textual form, but its
// effect on the job list does.
func (o CorpusOptions) CampaignKey() string {
	h := fnv.New64a()
	jobs := enumerateJobs(o)
	for _, j := range jobs {
		fmt.Fprintf(h, "%s/%d/%d;", j.name, j.seed, j.scale)
	}
	fmt.Fprintf(h, "|cfg=%+v", o.config())
	return fmt.Sprintf("%sinterval=%d,max=%d,jobs=%d,id=%016x",
		seedDomain, o.Interval, o.MaxInstr, len(jobs), h.Sum64())
}

// CollectAllCtx is CollectAll with cooperative cancellation and optional
// checkpoint/resume. Jobs whose slots jrn already holds are decoded instead
// of re-simulated; fresh completions are journaled before the campaign
// proceeds. The merged corpus is bit-identical to CollectAll for any worker
// count and any interrupt/resume history (gob round-trips float64 bits
// exactly). On cancellation the report says which job slots completed — all
// of them already journaled, so a re-run resumes from there.
func CollectAllCtx(ctx context.Context, o CorpusOptions, jrn *checkpoint.Journal) ([]Sample, *runner.Report, error) {
	cfg := o.config()
	jobs := enumerateJobs(o)
	ropts := runner.Options{Jobs: o.Jobs}
	if o.Progress != nil {
		total := len(jobs)
		progress := o.Progress
		ropts.OnJobDone = func(done int) { progress(done, total) }
	}
	batches, rep, err := checkpoint.Run(ctx, jrn, ropts, len(jobs),
		func(_ context.Context, i int) ([]Sample, error) {
			j := jobs[i]
			return Collect(cfg, j.build(j.seed, j.scale), o.Interval, o.MaxInstr), nil
		})
	if err != nil {
		return nil, rep, err
	}
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	out := make([]Sample, 0, total)
	for _, b := range batches {
		out = append(out, b...)
	}
	Repack(out)
	return out, rep, nil
}

// BuildCorpusCtx is BuildCorpus with cancellation and checkpoint/resume.
func BuildCorpusCtx(ctx context.Context, o CorpusOptions, jrn *checkpoint.Journal) (*Dataset, error) {
	samples, _, err := CollectAllCtx(ctx, o, jrn)
	if err != nil {
		return nil, err
	}
	return New(samples), nil
}
