package branch

import (
	"math/rand"
	"testing"
)

func newTest() *Predictor { return New(DefaultConfig()) }

func TestAlwaysTakenLearned(t *testing.T) {
	p := newTest()
	pc := uint64(0x400100)
	wrong := 0
	for i := 0; i < 200; i++ {
		d := p.PredictDirection(pc)
		if !d.Taken && i > 10 {
			wrong++
		}
		p.UpdateDirection(d, true)
	}
	if wrong != 0 {
		t.Fatalf("always-taken branch mispredicted %d times after warmup", wrong)
	}
}

func TestAlternatingPatternLearnedByLocal(t *testing.T) {
	// A strict T/NT alternation is captured by local history.
	p := newTest()
	pc := uint64(0x400200)
	taken := false
	wrong := 0
	for i := 0; i < 400; i++ {
		d := p.PredictDirection(pc)
		if i > 100 && d.Taken != taken {
			wrong++
		}
		p.UpdateDirection(d, taken)
		taken = !taken
	}
	if wrong > 10 {
		t.Fatalf("alternating pattern mispredicted %d/300 after warmup", wrong)
	}
}

func TestMispredictCounted(t *testing.T) {
	p := newTest()
	pc := uint64(0x400300)
	// Train taken, then flip: first flip must be a mispredict.
	for i := 0; i < 50; i++ {
		d := p.PredictDirection(pc)
		p.UpdateDirection(d, true)
	}
	before := p.Stats.CondIncorrect
	d := p.PredictDirection(pc)
	if !d.Taken {
		t.Fatal("expected taken prediction after training")
	}
	p.UpdateDirection(d, false)
	if p.Stats.CondIncorrect != before+1 {
		t.Fatalf("mispredict not counted: %d -> %d", before, p.Stats.CondIncorrect)
	}
}

func TestBTBInstallAndHit(t *testing.T) {
	p := newTest()
	pc := uint64(0x400400)
	if _, ok := p.PredictTarget(pc); ok {
		t.Fatal("BTB hit on cold entry")
	}
	p.UpdateTarget(pc, 42, 0, false)
	tgt, ok := p.PredictTarget(pc)
	if !ok || tgt != 42 {
		t.Fatalf("BTB = (%d,%v), want (42,true)", tgt, ok)
	}
	if p.Stats.BTBHits != 1 || p.Stats.BTBLookups != 2 {
		t.Fatalf("stats hits=%d lookups=%d, want 1/2", p.Stats.BTBHits, p.Stats.BTBLookups)
	}
}

func TestBTBAliasingPoison(t *testing.T) {
	// Two PCs that collide in the BTB: training one poisons the other
	// (the Spectre-BTB primitive).
	cfg := DefaultConfig()
	p := New(cfg)
	pcA := uint64(0x1000)
	pcB := pcA + uint64(cfg.BTBEntries) // same index, different tag? tag is pc+1 so miss
	p.UpdateTarget(pcA, 7, 0, false)
	if _, ok := p.PredictTarget(pcB); ok {
		t.Fatal("tag check failed: aliased PC hit")
	}
	// Same PC retrains to a new target: mispredict recorded when old
	// prediction was consumed.
	pred, ok := p.PredictTarget(pcA)
	if !ok {
		t.Fatal("expected hit")
	}
	p.UpdateTarget(pcA, 9, pred, true)
	if p.Stats.BTBMispredicts != 1 {
		t.Fatalf("BTB mispredicts = %d, want 1", p.Stats.BTBMispredicts)
	}
}

func TestRASLIFO(t *testing.T) {
	p := newTest()
	p.PushRAS(10)
	p.PushRAS(20)
	p.PushRAS(30)
	for _, want := range []int{30, 20, 10} {
		got, ok := p.PopRAS()
		if !ok || got != want {
			t.Fatalf("PopRAS = (%d,%v), want (%d,true)", got, ok, want)
		}
	}
	if _, ok := p.PopRAS(); ok {
		t.Fatal("pop from empty RAS succeeded")
	}
	if p.Stats.RASUnderflows != 1 {
		t.Fatalf("underflows = %d, want 1", p.Stats.RASUnderflows)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	for i := 0; i < cfg.RASEntries+4; i++ {
		p.PushRAS(i)
	}
	if p.Stats.RASOverflows != 4 {
		t.Fatalf("overflows = %d, want 4", p.Stats.RASOverflows)
	}
	// Top of stack is the most recent push; the oldest 4 were dropped.
	got, ok := p.PopRAS()
	if !ok || got != cfg.RASEntries+3 {
		t.Fatalf("top = (%d,%v), want (%d,true)", got, ok, cfg.RASEntries+3)
	}
	// Bottom should now be 4 (0..3 discarded).
	var last int
	for {
		v, ok := p.PopRAS()
		if !ok {
			break
		}
		last = v
	}
	if last != 4 {
		t.Fatalf("oldest surviving entry = %d, want 4", last)
	}
}

func TestRASDepth(t *testing.T) {
	p := newTest()
	if p.RASDepth() != 0 {
		t.Fatal("fresh RAS not empty")
	}
	p.PushRAS(1)
	p.PushRAS(2)
	if p.RASDepth() != 2 {
		t.Fatalf("depth = %d, want 2", p.RASDepth())
	}
}

func TestChooserPrefersBetterComponent(t *testing.T) {
	// A branch whose outcome correlates with global history but not with
	// its own local history should drive the chooser toward global.
	p := newTest()
	rng := rand.New(rand.NewSource(7))
	// Branch A's outcome equals branch B's last outcome (global corr).
	pcA, pcB := uint64(0x500000), uint64(0x600010)
	lastB := false
	for i := 0; i < 2000; i++ {
		dB := p.PredictDirection(pcB)
		outB := rng.Intn(2) == 0
		p.UpdateDirection(dB, outB)
		dA := p.PredictDirection(pcA)
		p.UpdateDirection(dA, lastB)
		lastB = outB
	}
	if p.Stats.GlobalUsed == 0 {
		t.Fatal("chooser never selected global predictor")
	}
}

func TestMistrainAliasingCounter(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	pcA := uint64(0x100)
	pcB := pcA + uint64(cfg.LocalTableSize) // same local index
	dA := p.PredictDirection(pcA)
	p.UpdateDirection(dA, true)
	dB := p.PredictDirection(pcB)
	p.UpdateDirection(dB, true)
	if p.Stats.MistrainAliasing == 0 {
		t.Fatal("aliasing update not counted")
	}
}

func TestResetStats(t *testing.T) {
	p := newTest()
	d := p.PredictDirection(1)
	p.UpdateDirection(d, true)
	p.ResetStats()
	if p.Stats != (Stats{}) {
		t.Fatalf("stats not zeroed: %+v", p.Stats)
	}
}
