// Package branch implements the front-end prediction structures of the
// simulated core: a tournament direction predictor (local + global history
// with a choice table), a branch target buffer, and a return address stack —
// the configuration given in the paper's Table II (tournament predictor,
// 4096 BTB entries, 16 RAS entries).
//
// These structures are first-class attack surfaces: Spectre-PHT mistrains
// the direction tables, Spectre-BTB poisons the BTB, Spectre-RSB
// over/underflows the RAS, and BranchScope reads directional state back out
// through timing. The predictor therefore exposes its internal state
// transitions through counters consumed by internal/hpc.
package branch

// Config sizes the prediction structures.
type Config struct {
	LocalHistoryBits  int // bits of per-branch local history
	LocalTableSize    int // entries in the local pattern table
	GlobalHistoryBits int // bits of global history
	GlobalTableSize   int // entries in the global pattern table
	ChoiceTableSize   int // entries in the chooser
	BTBEntries        int // branch target buffer entries
	RASEntries        int // return address stack depth
}

// DefaultConfig mirrors Table II of the paper.
func DefaultConfig() Config {
	return Config{
		LocalHistoryBits:  10,
		LocalTableSize:    2048,
		GlobalHistoryBits: 12,
		GlobalTableSize:   4096,
		ChoiceTableSize:   4096,
		BTBEntries:        4096,
		RASEntries:        16,
	}
}

// Stats counts predictor events; the HPC fabric snapshots these.
type Stats struct {
	Lookups          uint64 // conditional direction predictions made
	CondPredicted    uint64 // conditional branches predicted taken
	CondIncorrect    uint64 // direction mispredictions
	BTBLookups       uint64
	BTBHits          uint64
	BTBMispredicts   uint64 // wrong target from BTB
	RASUsed          uint64 // return predictions served by RAS
	RASIncorrect     uint64 // RAS target mispredictions
	RASOverflows     uint64 // pushes that wrapped the stack
	RASUnderflows    uint64 // pops from an empty stack
	LocalUsed        uint64 // chooser selected the local predictor
	GlobalUsed       uint64 // chooser selected the global predictor
	ChoiceFlips      uint64 // chooser counter direction changes
	MistrainAliasing uint64 // updates that changed a counter trained by a different PC
}

// Predictor is the tournament branch predictor with BTB and RAS.
type Predictor struct {
	cfg Config

	localHist  []uint32 // per-branch history registers, indexed by PC hash
	localTable []uint8  // 2-bit saturating counters indexed by local history
	globalHist uint32
	globalTbl  []uint8 // 2-bit counters indexed by global history ^ PC
	choice     []uint8 // 2-bit chooser: >=2 means "use global"

	btbTag  []uint64
	btbTarg []int
	btbPC   []uint64 // owner PC of each local-table entry, for aliasing stats

	ras    []int
	rasTop int // number of valid entries (capped speculative stack)

	Stats Stats
}

// New creates a predictor with the given configuration.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:        cfg,
		localHist:  make([]uint32, cfg.LocalTableSize),
		localTable: make([]uint8, cfg.LocalTableSize),
		globalTbl:  make([]uint8, cfg.GlobalTableSize),
		choice:     make([]uint8, cfg.ChoiceTableSize),
		btbTag:     make([]uint64, cfg.BTBEntries),
		btbTarg:    make([]int, cfg.BTBEntries),
		btbPC:      make([]uint64, cfg.LocalTableSize),
		ras:        make([]int, cfg.RASEntries),
	}
	// Weakly-taken initial counters, per common practice.
	for i := range p.localTable {
		p.localTable[i] = 1
	}
	for i := range p.globalTbl {
		p.globalTbl[i] = 1
	}
	for i := range p.choice {
		p.choice[i] = 1
	}
	return p
}

func (p *Predictor) localIdx(pc uint64) int {
	return int(pc % uint64(p.cfg.LocalTableSize))
}

func (p *Predictor) localPatIdx(pc uint64) int {
	h := p.localHist[p.localIdx(pc)]
	mask := uint32(1)<<p.cfg.LocalHistoryBits - 1
	return int((h & mask)) % p.cfg.LocalTableSize
}

func (p *Predictor) globalIdx(pc uint64) int {
	mask := uint32(1)<<p.cfg.GlobalHistoryBits - 1
	return int((uint64(p.globalHist&mask) ^ pc)) % p.cfg.GlobalTableSize
}

func (p *Predictor) choiceIdx(pc uint64) int {
	return int(pc % uint64(p.cfg.ChoiceTableSize))
}

// Direction holds the state captured at prediction time so that the update
// after resolution touches the same entries even if histories moved on.
type Direction struct {
	PC        uint64
	Taken     bool
	usedLocal bool
	localPat  int
	globalIdx int
	choiceIdx int
}

// PredictDirection predicts the direction of the conditional branch at pc.
func (p *Predictor) PredictDirection(pc uint64) Direction {
	p.Stats.Lookups++
	li := p.localPatIdx(pc)
	gi := p.globalIdx(pc)
	ci := p.choiceIdx(pc)
	localTaken := p.localTable[li] >= 2
	globalTaken := p.globalTbl[gi] >= 2
	useGlobal := p.choice[ci] >= 2
	taken := localTaken
	if useGlobal {
		taken = globalTaken
		p.Stats.GlobalUsed++
	} else {
		p.Stats.LocalUsed++
	}
	if taken {
		p.Stats.CondPredicted++
	}
	return Direction{PC: pc, Taken: taken, usedLocal: !useGlobal, localPat: li, globalIdx: gi, choiceIdx: ci}
}

func bump(c *uint8, up bool) {
	if up {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// UpdateDirection trains the predictor with the resolved outcome.
func (p *Predictor) UpdateDirection(d Direction, taken bool) {
	if d.Taken != taken {
		p.Stats.CondIncorrect++
	}
	li := p.localIdx(d.PC)
	if owner := p.btbPC[li]; owner != 0 && owner != d.PC {
		p.Stats.MistrainAliasing++
	}
	p.btbPC[li] = d.PC

	localWas := p.localTable[d.localPat] >= 2
	globalWas := p.globalTbl[d.globalIdx] >= 2
	// Train the chooser only when the components disagree.
	if localWas != globalWas {
		before := p.choice[d.choiceIdx] >= 2
		bump(&p.choice[d.choiceIdx], globalWas == taken)
		if after := p.choice[d.choiceIdx] >= 2; after != before {
			p.Stats.ChoiceFlips++
		}
	}
	bump(&p.localTable[d.localPat], taken)
	bump(&p.globalTbl[d.globalIdx], taken)
	// Update histories.
	h := &p.localHist[li]
	*h = *h<<1 | b2u32(taken)
	p.globalHist = p.globalHist<<1 | b2u32(taken)
}

func b2u32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// PredictTarget consults the BTB for the target of the control-flow
// instruction at pc. ok is false on a BTB miss.
func (p *Predictor) PredictTarget(pc uint64) (target int, ok bool) {
	p.Stats.BTBLookups++
	i := int(pc % uint64(p.cfg.BTBEntries))
	if p.btbTag[i] == pc+1 { // +1 so zero means empty
		p.Stats.BTBHits++
		return p.btbTarg[i], true
	}
	return 0, false
}

// UpdateTarget installs or corrects a BTB entry; wrong reports whether the
// previous prediction from this entry was wrong.
func (p *Predictor) UpdateTarget(pc uint64, target int, predicted int, hadPrediction bool) {
	if hadPrediction && predicted != target {
		p.Stats.BTBMispredicts++
	}
	i := int(pc % uint64(p.cfg.BTBEntries))
	p.btbTag[i] = pc + 1
	p.btbTarg[i] = target
}

// PushRAS records a call's return index on the return address stack.
func (p *Predictor) PushRAS(retIdx int) {
	if p.rasTop == p.cfg.RASEntries {
		// Overflow: wrap, discarding the oldest entry.
		p.Stats.RASOverflows++
		copy(p.ras, p.ras[1:])
		p.ras[p.cfg.RASEntries-1] = retIdx
		return
	}
	p.ras[p.rasTop] = retIdx
	p.rasTop++
}

// PopRAS predicts a return target. ok is false on underflow.
func (p *Predictor) PopRAS() (target int, ok bool) {
	if p.rasTop == 0 {
		p.Stats.RASUnderflows++
		return 0, false
	}
	p.rasTop--
	p.Stats.RASUsed++
	return p.ras[p.rasTop], true
}

// RecordRASOutcome tallies whether a RAS-served prediction was correct.
func (p *Predictor) RecordRASOutcome(correct bool) {
	if !correct {
		p.Stats.RASIncorrect++
	}
}

// RASDepth exposes the current stack depth (for HPC sampling).
func (p *Predictor) RASDepth() int { return p.rasTop }

// RASSnapshot captures the speculative return-stack state so a pipeline
// squash can restore it.
type RASSnapshot struct {
	stack []int
	top   int
}

// SnapshotRAS captures the current RAS contents.
func (p *Predictor) SnapshotRAS() RASSnapshot {
	return RASSnapshot{stack: append([]int(nil), p.ras[:p.rasTop]...), top: p.rasTop}
}

// RestoreRAS rewinds the RAS to a snapshot (misprediction recovery).
func (p *Predictor) RestoreRAS(s RASSnapshot) {
	copy(p.ras, s.stack)
	p.rasTop = s.top
}

// ResetStats zeroes the statistics block (used between sampling windows in
// tests; the HPC fabric normally snapshots deltas instead).
func (p *Predictor) ResetStats() { p.Stats = Stats{} }
