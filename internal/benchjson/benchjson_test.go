package benchjson

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func readAll(t *testing.T, path string) map[string]json.RawMessage {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("report is not a JSON object: %v", err)
	}
	return m
}

func TestMergeCreatesFreshReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := Merge(path, map[string]any{"serving": map[string]int{"clients": 4}}); err != nil {
		t.Fatal(err)
	}
	m := readAll(t, path)
	if _, ok := m["serving"]; !ok {
		t.Fatalf("fresh report missing written section: %v", m)
	}
}

func TestMergePreservesUnrelatedSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")

	// Tool A writes its flat keys (the evaxbench shape).
	type benchShape struct {
		Jobs    int     `json:"jobs"`
		Speedup float64 `json:"speedup"`
	}
	if err := Merge(path, benchShape{Jobs: 8, Speedup: 3.5}); err != nil {
		t.Fatal(err)
	}
	// Tool B adds its own section (the evaxload shape).
	if err := Merge(path, map[string]any{"serving": map[string]any{"clients": 4}}); err != nil {
		t.Fatal(err)
	}
	// Tool A runs again with new numbers: must update its keys, keep B's.
	if err := Merge(path, benchShape{Jobs: 16, Speedup: 5.0}); err != nil {
		t.Fatal(err)
	}

	m := readAll(t, path)
	for _, key := range []string{"jobs", "speedup", "serving"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("merged report lost %q: %v", key, m)
		}
	}
	var jobs int
	if err := json.Unmarshal(m["jobs"], &jobs); err != nil || jobs != 16 {
		t.Fatalf("jobs = %s, want 16", m["jobs"])
	}
	var serving struct {
		Clients int `json:"clients"`
	}
	if err := Read(path, "serving", &serving); err != nil {
		t.Fatal(err)
	}
	if serving.Clients != 4 {
		t.Fatalf("serving.clients = %d, want 4", serving.Clients)
	}
}

func TestMergeRefusesNonObjectFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte(`[1,2,3]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Merge(path, map[string]any{"serving": 1}); err == nil {
		t.Fatal("merged into a non-object file")
	}
	// The original content must be untouched after the refusal.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `[1,2,3]` {
		t.Fatalf("refused merge still modified the file: %s", data)
	}
}

func TestMergeRejectsNonObjectUpdate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := Merge(path, []int{1, 2}); err == nil {
		t.Fatal("accepted a non-object update")
	}
}

func TestReadMissingSection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := Merge(path, map[string]any{"a": 1}); err != nil {
		t.Fatal(err)
	}
	var v int
	if err := Read(path, "missing", &v); err == nil {
		t.Fatal("read of a missing section succeeded")
	}
	if err := Read(filepath.Join(t.TempDir(), "nope.json"), "a", &v); err == nil {
		t.Fatal("read of a missing file succeeded")
	}
}
