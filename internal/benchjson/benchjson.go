// Package benchjson maintains BENCH_runner.json-style report files that
// several tools contribute sections to. Merge overlays a writer's top-level
// keys onto whatever the file already holds, so evaxbench's scoring sections
// and evaxload's serving section can coexist in one report instead of each
// tool clobbering the other's output.
package benchjson

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"

	"evax/internal/safeio"
)

// Merge updates path with v's top-level JSON keys, preserving every key the
// file already has that v does not set. A missing file starts from an empty
// object; a file that exists but does not hold a JSON object is an error
// (merging into it would silently discard someone's data). The write is
// crash-safe (temp + fsync + rename).
func Merge(path string, v any) error {
	update, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("benchjson: encoding update: %w", err)
	}
	var updateKeys map[string]json.RawMessage
	if err := json.Unmarshal(update, &updateKeys); err != nil {
		return fmt.Errorf("benchjson: update must be a JSON object: %w", err)
	}

	merged := make(map[string]json.RawMessage)
	existing, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Fresh report.
	case err != nil:
		return fmt.Errorf("benchjson: reading %s: %w", path, err)
	default:
		if err := json.Unmarshal(existing, &merged); err != nil {
			return fmt.Errorf("benchjson: %s is not a JSON object; refusing to overwrite: %w", path, err)
		}
	}
	for k, raw := range updateKeys {
		merged[k] = raw
	}

	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: encoding %s: %w", path, err)
	}
	data = append(data, '\n')
	return safeio.WriteFile(path, data, 0o644)
}

// Read unmarshals one section of a report file into out. It reports
// fs.ErrNotExist when the file is missing and a wrapped error when the
// section is absent.
func Read(path, section string, out any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sections map[string]json.RawMessage
	if err := json.Unmarshal(data, &sections); err != nil {
		return fmt.Errorf("benchjson: decoding %s: %w", path, err)
	}
	raw, ok := sections[section]
	if !ok {
		return fmt.Errorf("benchjson: %s has no %q section", path, section)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("benchjson: decoding %s section %q: %w", path, section, err)
	}
	return nil
}
