package experiments

import (
	"fmt"
	"strings"

	"evax/internal/isa"
	"evax/internal/metrics"
	"evax/internal/runner"
)

// ZeroDayRow reports one held-out attack's detection.
type ZeroDayRow struct {
	Class       isa.Class
	TPRPerSpec  float64 // PerSpectron, class excluded from training
	TPREVAX     float64 // EVAX, class excluded from training (zero-day)
	TPRRetrain  float64 // EVAX trained with the class included
	TestWindows int
}

// ZeroDayResult is the §VIII-C zero-day study: per-class true-positive
// rates with the class held out, and after retraining with it included.
type ZeroDayResult struct {
	Rows []ZeroDayRow
}

// ZeroDayTPR evaluates the given classes (all attack classes when empty) in
// the hold-one-attack-out setting.
func ZeroDayTPR(lab *Lab, classes []isa.Class) ZeroDayResult {
	if len(classes) == 0 {
		for c := isa.ClassBenign + 1; c < isa.NumClasses; c++ {
			classes = append(classes, c)
		}
	}
	folds := lab.DS.KFoldByAttack(lab.Opts.Seed)
	byClass := map[isa.Class]int{}
	for i, f := range folds {
		byClass[f.HeldOut] = i
	}
	// One fold retrain per class: each job retrains both detectors with
	// the class held out — independent work, fanned out over the engine.
	// Slots are index-addressed by class position, so the table's row
	// order matches the sequential loop for any worker count.
	rows := runner.Map(lab.runnerOpts(), len(classes), func(k int) *ZeroDayRow {
		c := classes[k]
		fi, ok := byClass[c]
		if !ok {
			return nil
		}
		fold := folds[fi]
		ps := lab.TrainDetectorLike("perspectron", fold.Train, nil, nil)
		ev := lab.TrainDetectorLike("evax", fold.Train, nil, nil)
		// Clone the shared retrained detector: scoring mutates forward-pass
		// scratch, so concurrent jobs each flag through a private copy.
		retrained := lab.EVAX.Clone()
		row := &ZeroDayRow{Class: c}
		var psC, evC, rtC metrics.Confusion
		for _, i := range fold.Test {
			s := &lab.DS.Samples[i]
			if s.Class != c {
				continue // TPR is measured on the held-out attack only
			}
			row.TestWindows++
			psC.Add(ps.Flag(s.Derived), true)
			evC.Add(ev.Flag(s.Derived), true)
			rtC.Add(retrained.Flag(s.Derived), true)
		}
		row.TPRPerSpec = psC.TPR()
		row.TPREVAX = evC.TPR()
		row.TPRRetrain = rtC.TPR()
		return row
	})
	var res ZeroDayResult
	for _, row := range rows {
		if row != nil {
			res.Rows = append(res.Rows, *row)
		}
	}
	return res
}

// String renders the zero-day table.
func (r ZeroDayResult) String() string {
	var b strings.Builder
	b.WriteString("Zero-day detection (hold-one-attack-out TPR)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-20s PerSpectron=%.2f  EVAX=%.2f  EVAX-retrained=%.2f  (%d windows)\n",
			row.Class, row.TPRPerSpec, row.TPREVAX, row.TPRRetrain, row.TestWindows)
	}
	return b.String()
}
