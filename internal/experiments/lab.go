// Package experiments reproduces every table and figure of the paper's
// evaluation. Each driver returns a printable result structure; the
// evaxbench command and the repository's benchmarks regenerate the paper's
// rows and series from them. DESIGN.md maps experiment IDs to drivers.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"evax/internal/checkpoint"
	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/featureng"
	"evax/internal/gan"
	"evax/internal/isa"
	"evax/internal/runner"
)

// LabOptions sizes the shared experimental setup. Scale knobs trade
// fidelity for runtime; defaults complete in tens of seconds.
type LabOptions struct {
	Corpus dataset.CorpusOptions
	// GANEpochs trains the AM-GAN for this many passes.
	GANEpochs int
	// GANPerClass caps AM-GAN training samples per class.
	GANPerClass int
	// GenPerClass is how many adversarial samples the generator emits
	// per class for detector vaccination.
	GenPerClass int
	// TargetFPR tunes detector thresholds on benign training scores.
	TargetFPR float64
	Seed      int64
	// Jobs is the worker count for every simulator-backed campaign the lab
	// runs (corpus builds, k-fold retraining, fuzz and overhead sweeps):
	// 0 uses GOMAXPROCS, 1 is the sequential reference. Results are
	// index-addressed (see internal/runner), so every figure and table is
	// byte-identical across worker counts.
	Jobs int
	// Progress, when non-nil, receives each lab campaign's running
	// completion count (1-based). It is called from worker goroutines, so
	// it must be safe for concurrent use; the fault-injection tests use it
	// to kill a campaign at an exact point.
	Progress func(done int)
}

// DefaultLabOptions returns the standard experimental setup.
func DefaultLabOptions() LabOptions {
	return LabOptions{
		Corpus: dataset.DefaultCorpusOptions(),
		// Moderate adversarial-game length: the vaccination benefit
		// peaks well before Nash equilibrium (late-game generator
		// output drifts toward the unconditional mean and dilutes the
		// boundary-shaping value of the samples).
		GANEpochs:   12,
		GANPerClass: 30,
		GenPerClass: 60,
		TargetFPR:   0.01,
		Seed:        1,
	}
}

// QuickLabOptions returns a reduced setup for tests.
func QuickLabOptions() LabOptions {
	o := DefaultLabOptions()
	o.Corpus.Seeds = 2
	o.Corpus.MaxInstr = 40_000
	o.GANEpochs = 12
	o.GANPerClass = 25
	o.GenPerClass = 30
	return o
}

// Lab holds the expensive shared artifacts: the corpus, the trained AM-GAN,
// the mined security HPCs, and the trained detectors.
type Lab struct {
	Opts LabOptions
	DS   *dataset.Dataset

	// GAN is the AM-GAN trained over the EVAX base feature space.
	GAN      *gan.AMGAN
	GANTrace gan.TrainResult

	// Mined are the engineered security HPCs extracted from the trained
	// generator (Table I).
	Mined []featureng.ANDFeature

	// PerSpec is the baseline detector (106 features, real samples only).
	PerSpec *detect.Detector
	// EVAX is the vaccinated detector (145 features, real + generated).
	EVAX *detect.Detector

	// classOf maps GAN conditioning indices to ISA classes and back.
	classList []isa.Class
	classIdx  map[isa.Class]int
}

// runnerOpts is the fan-out configuration shared by every lab campaign.
func (lab *Lab) runnerOpts() runner.Options {
	return runner.Options{Jobs: lab.Opts.Jobs}
}

// campaignOpts is runnerOpts plus progress reporting. Only the journaled
// top-level campaigns (the fig17 sweep, the fig19 folds) use it, so
// LabOptions.Progress counts campaign units — nested helper fan-outs inside
// a job do not inflate the count.
func (lab *Lab) campaignOpts() runner.Options {
	o := lab.runnerOpts()
	o.OnJobDone = lab.Opts.Progress
	return o
}

// NewLab builds the full pipeline: corpus → AM-GAN → feature engineering →
// vaccinated detector training → threshold tuning.
func NewLab(o LabOptions) *Lab {
	lab, err := NewLabCtx(context.Background(), o, nil)
	if err != nil {
		// Unreachable: with a background context and no journal the corpus
		// build cannot fail (simulation panics re-raise).
		panic(err)
	}
	return lab
}

// NewLabCtx is NewLab with cooperative cancellation and optional
// checkpoint/resume of the corpus build — the lab's dominant cost. A killed
// build resumes from corpusJournal and trains on a bit-identical corpus.
// Training itself (GAN, detectors) is in-memory and fast; it restarts from
// the corpus on resume.
func NewLabCtx(ctx context.Context, o LabOptions, corpusJournal *checkpoint.Journal) (*Lab, error) {
	o.Corpus.Jobs = o.Jobs // one knob: the lab's worker count drives corpus fan-out too
	samples, _, err := dataset.CollectAllCtx(ctx, o.Corpus, corpusJournal)
	if err != nil {
		return nil, err
	}
	lab := &Lab{Opts: o, DS: dataset.New(samples)}
	lab.indexClasses()
	lab.trainGAN()
	lab.mineFeatures()
	lab.trainDetectors()
	return lab, nil
}

// campaignKey identifies the lab's training configuration for figure-level
// checkpoint journals: a journal recorded under one lab setup must not be
// resumed into another.
func (lab *Lab) campaignKey() string {
	o := lab.Opts
	return fmt.Sprintf("lab|seed=%d,gan=%d/%d,gen=%d,fpr=%g|%s",
		o.Seed, o.GANEpochs, o.GANPerClass, o.GenPerClass, o.TargetFPR, o.Corpus.CampaignKey())
}

// Figure17Key is the checkpoint campaign key for the fig17 fuzz sweep.
func (lab *Lab) Figure17Key(seedsPerTool int) string {
	return fmt.Sprintf("fig17|seeds=%d|%s", seedsPerTool, lab.campaignKey())
}

// Figure19Key is the checkpoint campaign key for the fig19 k-fold driver.
func (lab *Lab) Figure19Key(only []isa.Class) string {
	names := make([]string, len(only))
	for i, c := range only {
		names[i] = c.String()
	}
	return fmt.Sprintf("fig19|folds=%s|%s", strings.Join(names, "+"), lab.campaignKey())
}

func (lab *Lab) indexClasses() {
	lab.classList = lab.DS.Classes()
	lab.classIdx = make(map[isa.Class]int, len(lab.classList))
	for i, c := range lab.classList {
		lab.classIdx[c] = i
	}
}

// ClassIndex returns the GAN conditioning index for a class (-1 if absent).
func (lab *Lab) ClassIndex(c isa.Class) int {
	if i, ok := lab.classIdx[c]; ok {
		return i
	}
	return -1
}

// baseVectors projects dataset samples (by index) into the plan's base
// feature space — one batch gather into a contiguous block.
func (lab *Lab) baseVectors(fs *detect.FeaturePlan, idx []int) ([][]float64, []bool, []int) {
	vecs := fs.GatherBatch(lab.DS, idx)
	labels := make([]bool, len(idx))
	classes := make([]int, len(idx))
	for k, i := range idx {
		s := &lab.DS.Samples[i]
		labels[k] = s.Malicious
		classes[k] = lab.classIdx[s.Class]
	}
	return vecs, labels, classes
}

func (lab *Lab) allIdx() []int {
	idx := make([]int, len(lab.DS.Samples))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// trainGAN fits the conditional AM-GAN over EVAX base vectors with a
// stratified per-class cap.
func (lab *Lab) trainGAN() {
	fs := detect.EVAXBase()
	rng := rand.New(rand.NewSource(lab.Opts.Seed + 7))
	perClass := map[int][]int{}
	for i := range lab.DS.Samples {
		c := lab.classIdx[lab.DS.Samples[i].Class]
		perClass[c] = append(perClass[c], i)
	}
	var idx []int
	for c := 0; c < len(lab.classList); c++ { // stable order: determinism
		members := perClass[c]
		perm := rng.Perm(len(members))
		n := lab.Opts.GANPerClass
		if n > len(members) {
			n = len(members)
		}
		for _, p := range perm[:n] {
			idx = append(idx, members[p])
		}
	}
	vecs, _, classes := lab.baseVectors(fs, idx)
	cfg := gan.DefaultConfig(fs.BaseDim(), len(lab.classList))
	cfg.Seed = lab.Opts.Seed
	cfg.GenHidden = []int{64, 48}
	lab.GAN = gan.New(cfg)
	lab.GANTrace = lab.GAN.Train(vecs, classes, lab.Opts.GANEpochs)
}

// mineFeatures extracts the engineered security HPCs from the trained
// generator (falling back to the paper's Table I list for any shortfall).
func (lab *Lab) mineFeatures() {
	fs := detect.EVAXBase()
	lab.Mined = featureng.Mine(lab.GAN.Generator(), 12, fs.FeatureOf)
	if len(lab.Mined) < 12 {
		for _, f := range detect.DefaultEngineered(fs) {
			if len(lab.Mined) >= 12 {
				break
			}
			dup := false
			for _, g := range lab.Mined {
				if g.A == f.A && g.B == f.B {
					dup = true
					break
				}
			}
			if !dup {
				lab.Mined = append(lab.Mined, f)
			}
		}
	}
}

// GeneratedAugmentation emits the vaccination set: per-class adversarial
// samples from the trained generator with their malicious labels.
func (lab *Lab) GeneratedAugmentation(perClass int) ([][]float64, []bool) {
	var vecs [][]float64
	var labels []bool
	for ci, c := range lab.classList {
		for _, v := range lab.GAN.GenerateFiltered(ci, perClass, 4) {
			vecs = append(vecs, v)
			labels = append(labels, c.Malicious())
		}
	}
	return vecs, labels
}

func (lab *Lab) trainDetectors() {
	idx := lab.allIdx()

	// Baseline PerSpectron: 106 features, real data only.
	psFS := detect.PerSpectron()
	lab.PerSpec = detect.NewPerceptron(lab.Opts.Seed, psFS)
	lab.PerSpec.Train(lab.DS, idx, detect.DefaultTrainOptions())

	// EVAX: 133 base + 12 engineered, vaccinated with generated samples.
	evFS := detect.EVAXBase()
	evFS.SetEngineered(lab.Mined)
	lab.EVAX = detect.NewPerceptron(lab.Opts.Seed, evFS)
	real, labels, _ := lab.baseVectors(evFS, idx)
	gen, genLabels := lab.GeneratedAugmentation(lab.Opts.GenPerClass)
	lab.EVAX.TrainVectors(append(real, gen...), append(labels, genLabels...), detect.DefaultTrainOptions())

	lab.tuneThreshold(lab.PerSpec)
	lab.tuneThreshold(lab.EVAX)
}

// benignTrainScores scores the benign slice of the training corpus through
// the detector's fused batch path.
func (lab *Lab) benignTrainScores(d *detect.Detector) []float64 {
	var idx []int
	for i := range lab.DS.Samples {
		if !lab.DS.Samples[i].Malicious {
			idx = append(idx, i)
		}
	}
	scores := make([]float64, len(idx))
	d.ScoreBatch(lab.DS, idx, scores)
	return scores
}

// tuneThresholdAt sets a detector's operating point from benign training
// scores at an explicit target FPR.
func (lab *Lab) tuneThresholdAt(d *detect.Detector, fpr float64) {
	d.TuneThresholdForFPR(lab.benignTrainScores(d), fpr)
}

// tuneThreshold sets a detector's operating point from benign training
// scores at the lab's target FPR.
func (lab *Lab) tuneThreshold(d *detect.Detector) {
	d.TuneThresholdForFPR(lab.benignTrainScores(d), lab.Opts.TargetFPR)
}

// TrainDetectorLike builds and trains a fresh detector with the same recipe
// as one of the lab's detectors but restricted to the given training
// indices — the k-fold experiments retrain per fold.
//
// kind: "perspectron" (real data only), "evax" (GAN-vaccinated; the GAN is
// retrained without the held-out class), or "pfuzzer" (PerSpectron hardened
// with fuzzer-generated samples supplied by the caller).
func (lab *Lab) TrainDetectorLike(kind string, trainIdx []int, extraVecs [][]float64, extraLabels []bool) *detect.Detector {
	switch kind {
	case "perspectron":
		fs := detect.PerSpectron()
		d := detect.NewPerceptron(lab.Opts.Seed, fs)
		d.Train(lab.DS, trainIdx, detect.DefaultTrainOptions())
		lab.tuneThreshold(d)
		return d
	case "pfuzzer":
		fs := detect.PerSpectron()
		d := detect.NewPerceptron(lab.Opts.Seed, fs)
		real, labels, _ := lab.baseVectors(fs, trainIdx)
		d.TrainVectors(append(real, extraVecs...), append(labels, extraLabels...), detect.DefaultTrainOptions())
		lab.tuneThreshold(d)
		return d
	case "evax":
		fs := detect.EVAXBase()
		vecs, labels, classes := lab.baseVectors(fs, trainIdx)
		cfg := gan.DefaultConfig(fs.BaseDim(), len(lab.classList))
		cfg.Seed = lab.Opts.Seed + 13
		cfg.GenHidden = []int{64, 48}
		g := gan.New(cfg)
		capSamples, capClasses := stratifiedCap(vecs, classes, lab.Opts.GANPerClass, lab.Opts.Seed)
		g.Train(capSamples, capClasses, lab.Opts.GANEpochs)
		mined := featureng.Mine(g.Generator(), 12, fs.FeatureOf)
		fs.SetEngineered(mined)
		d := detect.NewPerceptron(lab.Opts.Seed, fs)
		// Generate augmentation only for classes present in training.
		var gen [][]float64
		var genLabels []bool
		present := map[int]bool{}
		for _, c := range classes {
			present[c] = true
		}
		for ci := range lab.classList {
			if !present[ci] {
				continue
			}
			for _, v := range g.GenerateBatch(ci, lab.Opts.GenPerClass) {
				gen = append(gen, v)
				genLabels = append(genLabels, lab.classList[ci].Malicious())
			}
		}
		d.TrainVectors(append(vecs, gen...), append(labels, genLabels...), detect.DefaultTrainOptions())
		lab.tuneThreshold(d)
		return d
	}
	panic(fmt.Sprintf("experiments: unknown detector kind %q", kind))
}

func stratifiedCap(vecs [][]float64, classes []int, perClass int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed + 23))
	byClass := map[int][]int{}
	for i, c := range classes {
		byClass[c] = append(byClass[c], i)
	}
	maxClass := 0
	for c := range byClass {
		if c > maxClass {
			maxClass = c
		}
	}
	var outV [][]float64
	var outC []int
	for c := 0; c <= maxClass; c++ { // stable order: determinism
		members := byClass[c]
		perm := rng.Perm(len(members))
		n := perClass
		if n > len(members) {
			n = len(members)
		}
		for _, p := range perm[:n] {
			outV = append(outV, vecs[members[p]])
			outC = append(outC, c)
		}
	}
	return outV, outC
}
