package experiments

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"evax/internal/checkpoint"
	"evax/internal/isa"
)

// TestFigure19KillAndResume: the k-fold driver killed after its first fold
// resumes from the journal and reproduces the uninterrupted rows exactly.
func TestFigure19KillAndResume(t *testing.T) {
	lab := quickLab(t)
	only := []isa.Class{isa.ClassMeltdown, isa.ClassDRAMA}
	ref := Figure19(lab, only)

	path := filepath.Join(t.TempDir(), "fig19.journal")
	key := lab.Figure19Key(only)
	j, err := checkpoint.Open(path, key)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the campaign after the first fold completes, on a copy of the
	// shared lab. One worker keeps the kill sharp: with a pool, in-flight
	// folds would legitimately run to completion after the cancel.
	ctx, cancel := context.WithCancel(context.Background())
	killed := *lab
	killed.Opts.Jobs = 1
	killed.Opts.Progress = func(done int) {
		if done >= 1 {
			cancel()
		}
	}
	_, err = Figure19Ctx(ctx, &killed, only, j)
	cancel()
	j.Close()
	if err == nil {
		t.Fatal("interrupted fig19 campaign reported success")
	}

	j2, err := checkpoint.Open(path, key)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() == 0 || j2.Len() >= len(only) {
		t.Fatalf("journal holds %d folds, want a partial campaign", j2.Len())
	}
	resumed, err := Figure19Ctx(context.Background(), lab, only, j2)
	j2.Close()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(ref, resumed) {
		t.Fatalf("resumed fig19 diverged from uninterrupted run:\nref:     %+v\nresumed: %+v", ref, resumed)
	}
}

// TestFigure19JournalKeyMismatch: a journal from a different fold selection
// refuses to resume.
func TestFigure19JournalKeyMismatch(t *testing.T) {
	lab := quickLab(t)
	path := filepath.Join(t.TempDir(), "fig19.journal")
	j, err := checkpoint.Open(path, lab.Figure19Key([]isa.Class{isa.ClassMeltdown}))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, []byte("row")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := checkpoint.Open(path, lab.Figure19Key([]isa.Class{isa.ClassDRAMA})); err == nil {
		t.Fatal("journal for a different fold set was accepted")
	}
}

// TestFigure17KillAndResume: the fuzz sweep killed after its first tool
// family resumes to a bit-identical result.
func TestFigure17KillAndResume(t *testing.T) {
	lab := quickLab(t)
	const seedsPerTool = 2
	ref := Figure17(lab, seedsPerTool)

	path := filepath.Join(t.TempDir(), "fig17.journal")
	key := lab.Figure17Key(seedsPerTool)
	j, err := checkpoint.Open(path, key)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	killed := *lab
	killed.Opts.Jobs = 1 // sharp kill: no in-flight tools finish after cancel
	killed.Opts.Progress = func(done int) {
		if done >= 1 {
			cancel()
		}
	}
	_, err = Figure17Ctx(ctx, &killed, seedsPerTool, j)
	cancel()
	j.Close()
	if err == nil {
		t.Fatal("interrupted fig17 sweep reported success")
	}

	j2, err := checkpoint.Open(path, key)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() == 0 || j2.Len() >= 4 {
		t.Fatalf("journal holds %d tools, want a partial sweep", j2.Len())
	}
	resumed, err := Figure17Ctx(context.Background(), lab, seedsPerTool, j2)
	j2.Close()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(ref, resumed) {
		t.Fatalf("resumed fig17 diverged from uninterrupted run:\nref:     %+v\nresumed: %+v", ref, resumed)
	}
}
