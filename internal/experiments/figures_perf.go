package experiments

import (
	"fmt"
	"strings"

	"evax/internal/dataset"
	"evax/internal/defense"
	"evax/internal/detect"
	"evax/internal/fmath"
	"evax/internal/isa"
	"evax/internal/metrics"
	"evax/internal/runner"
	"evax/internal/sim"
	"evax/internal/workload"
)

// EvalCorpus collects a fresh corpus from unseen program instances (a seed
// offset no training program used) and normalizes it with the lab's
// training maxima — the held-out evaluation traffic for Figures 14–16.
func (lab *Lab) EvalCorpus(seedOffset int64) []dataset.Sample {
	o := lab.Opts.Corpus
	o.SeedOffset = seedOffset
	samples := dataset.CollectAll(o)
	for i := range samples {
		lab.DS.NormalizeInPlace(samples[i].Derived)
	}
	return samples
}

// FeatureSeparationRow shows one complex HPC's mean normalized value on
// benign windows versus the attack classes it separates.
type FeatureSeparationRow struct {
	Feature    string
	BenignMean float64
	Attacks    map[isa.Class]float64
}

// Figure9to11Result holds the complex-HPC separation evidence of the
// paper's Figures 9 (stealthy cache attacks), 10 (speculative/Meltdown) and
// 11 (MDS/LVI, via the engineered SquashedBytesReadFromWRQu analogue).
type Figure9to11Result struct {
	Rows []FeatureSeparationRow
}

// Figure9to11 measures how the highlighted complex HPCs separate attack
// classes from benign execution on the training corpus.
func Figure9to11(lab *Lab) Figure9to11Result {
	fs := detect.EVAXBase()
	fs.SetEngineered(lab.Mined)
	specs := []struct {
		feature string
		classes []isa.Class
	}{
		// Fig 9: clean evictions expose stealthy cache attacks.
		{"dcache.CleanEvicts", []isa.Class{isa.ClassFlushFlush, isa.ClassFlushReload, isa.ClassPrimeProbe}},
		// Fig 10: squashed loads + spec-load store-queue hits expose
		// speculative and Meltdown-type attacks.
		{"lsq.squashedLoads", []isa.Class{isa.ClassSpectrePHT, isa.ClassMeltdown, isa.ClassSpectreRSB}},
		{"iew.MemOrderViolation", []isa.Class{isa.ClassSpectreSTL}},
		// Fig 11: the engineered assist/replay combination exposes
		// MDS-type and LVI attacks.
		{"lsq.ignoredResponses", []isa.Class{isa.ClassLVI, isa.ClassMedusaCacheIndex, isa.ClassFallout}},
	}
	var rows []FeatureSeparationRow
	for _, sp := range specs {
		pos := fs.Index(sp.feature)
		if pos < 0 {
			continue
		}
		row := FeatureSeparationRow{Feature: sp.feature, Attacks: map[isa.Class]float64{}}
		var benignSum float64
		var benignN int
		classSums := map[isa.Class]float64{}
		classN := map[isa.Class]int{}
		for i := range lab.DS.Samples {
			s := &lab.DS.Samples[i]
			v := fs.Base(s.Derived)[pos]
			if s.Class == isa.ClassBenign {
				benignSum += v
				benignN++
				continue
			}
			classSums[s.Class] += v
			classN[s.Class]++
		}
		if benignN > 0 {
			row.BenignMean = benignSum / float64(benignN)
		}
		for _, c := range sp.classes {
			if classN[c] > 0 {
				row.Attacks[c] = classSums[c] / float64(classN[c])
			}
		}
		rows = append(rows, row)
	}
	return Figure9to11Result{Rows: rows}
}

// String renders the separation table.
func (r Figure9to11Result) String() string {
	var b strings.Builder
	b.WriteString("Figures 9-11: Complex HPCs separating attack classes (mean normalized value)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-28s benign=%.4f", row.Feature, row.BenignMean)
		for c, v := range row.Attacks {
			fmt.Fprintf(&b, "  %s=%.4f", c, v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure14Series is one adaptive-architecture configuration's IPC behaviour.
type Figure14Series struct {
	Name     string
	MeanIPC  float64
	Timeline []defense.IPCPoint // timeline on the representative workload
}

// Figure14Result compares adaptive EVAX configurations against PerSpectron
// gating and always-on InvisiSpec (paper Figure 14).
type Figure14Result struct {
	Baseline float64 // unprotected mean IPC
	Series   []Figure14Series
}

// Figure14 runs the benign suite (unseen seeds) under each configuration
// and records IPC.
func Figure14(lab *Lab) Figure14Result {
	// detector selects the per-job gating detector: flaggers score through
	// the sampling window, which mutates forward-pass scratch, so each
	// (config, workload) job builds a flagger around a private clone.
	configs := []struct {
		name     string
		detector func() *detect.Detector // nil: always-on gating
		policy   sim.Policy
	}{
		{"InvisiSpec (always on)", nil, sim.PolicyInvisiSpecSpectre},
		{"PerSpectron-SpectreSafe", lab.PerSpec.Clone, sim.PolicyFenceAfterBranch},
		{"EVAX-SpectreSafe", lab.EVAX.Clone, sim.PolicyFenceAfterBranch},
		{"EVAX-SafeSpec (InvisiSpec)", lab.EVAX.Clone, sim.PolicyInvisiSpecSpectre},
		{"EVAX-FuturisticSafeFence", lab.EVAX.Clone, sim.PolicyFenceBeforeLoad},
	}
	res := Figure14Result{}
	const maxInstr = 200_000
	suite := workload.All()
	baseIPC := runner.Map(lab.runnerOpts(), len(suite), func(wi int) float64 {
		p := suite[wi].Build(int64(wi)*37+901, lab.Opts.Corpus.Scale)
		m := sim.New(sim.DefaultConfig(), p)
		m.Run(maxInstr)
		return m.IPC()
	})
	res.Baseline = metrics.Mean(baseIPC)
	for _, cfg := range configs {
		dcfg := defense.DefaultConfig(cfg.policy)
		dcfg.SampleInterval = lab.Opts.Corpus.Interval
		dcfg.SecureWindow = 20_000
		type workloadRun struct {
			ipc      float64
			timeline []defense.IPCPoint
		}
		runs := runner.Map(lab.runnerOpts(), len(suite), func(wi int) workloadRun {
			fl := defense.Flagger(defense.AlwaysOn)
			if cfg.detector != nil {
				fl = defense.NewDetectorFlagger(cfg.detector(), lab.DS)
			}
			p := suite[wi].Build(int64(wi)*37+901, lab.Opts.Corpus.Scale)
			r := defense.RunProgram(sim.DefaultConfig(), p, fl, dcfg, maxInstr)
			return workloadRun{ipc: r.IPC, timeline: r.Timeline}
		})
		ipcs := make([]float64, len(runs))
		for wi, r := range runs {
			ipcs[wi] = r.ipc
		}
		res.Series = append(res.Series, Figure14Series{
			Name:     cfg.name,
			MeanIPC:  metrics.Mean(ipcs),
			Timeline: runs[0].timeline, // representative workload
		})
	}
	return res
}

// String renders the comparison.
func (r Figure14Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14: Adaptive-architecture IPC (benign suite; unprotected baseline %.3f)\n", r.Baseline)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  %-28s meanIPC=%.3f (%.1f%% of baseline)\n",
			s.Name, s.MeanIPC, 100*s.MeanIPC/r.Baseline)
	}
	return b.String()
}

// Figure15Row reports FP/FN behaviour for one detector at one cadence.
type Figure15Row struct {
	Detector   string
	Interval   uint64
	FPPer10K   float64 // false positives per 10k instructions
	FNPer10K   float64
	FPR, FNR   float64
	Windows    int
	AttackWnds int
}

// Figure15Result is the FP/FN distribution comparison (paper Figure 15).
type Figure15Result struct {
	Rows []Figure15Row
}

// Figure15 measures false positives and negatives per 10k instructions on
// unseen traffic for PerSpectron and EVAX at two sampling cadences. Models
// are trained at the cadence they run at (the paper trains a dedicated
// model for each sampling rate); the faster cadence's detectors are
// feature-identical retrains on a matching-interval corpus.
func Figure15(lab *Lab) Figure15Result {
	var res Figure15Result
	for _, interval := range []uint64{lab.Opts.Corpus.Interval, lab.Opts.Corpus.Interval / 4} {
		ps, ev := lab.PerSpec, lab.EVAX
		norm := lab.DS
		if interval != lab.Opts.Corpus.Interval {
			// Retrain at this cadence.
			o := lab.Opts.Corpus
			o.Interval = interval
			train := dataset.New(dataset.CollectAll(o))
			norm = train
			idx := make([]int, len(train.Samples))
			for i := range idx {
				idx[i] = i
			}
			psFS := detect.PerSpectron()
			ps = detect.NewPerceptron(lab.Opts.Seed, psFS)
			ps.Train(train, idx, detect.DefaultTrainOptions())
			evFS := detect.EVAXBase()
			evFS.SetEngineered(lab.Mined)
			ev = detect.NewPerceptron(lab.Opts.Seed, evFS)
			ev.Train(train, idx, detect.DefaultTrainOptions())
			var benignIdx []int
			for i := range train.Samples {
				if !train.Samples[i].Malicious {
					benignIdx = append(benignIdx, i)
				}
			}
			benignPS := make([]float64, len(benignIdx))
			benignEV := make([]float64, len(benignIdx))
			ps.ScoreBatch(train, benignIdx, benignPS)
			ev.ScoreBatch(train, benignIdx, benignEV)
			ps.TuneThresholdForFPR(benignPS, lab.Opts.TargetFPR)
			ev.TuneThresholdForFPR(benignEV, lab.Opts.TargetFPR)
		}
		o := lab.Opts.Corpus
		o.Interval = interval
		o.SeedOffset = 7000
		samples := dataset.CollectAll(o)
		for i := range samples {
			norm.NormalizeInPlace(samples[i].Derived)
		}
		for _, det := range []struct {
			name string
			d    *detect.Detector
		}{{"PerSpectron", ps}, {"EVAX", ev}} {
			row := Figure15Row{Detector: det.name, Interval: interval}
			var fp, fn, benignInstr, attackInstr int
			var benignWindows, attackWindows int
			for i := range samples {
				s := &samples[i]
				flag := det.d.Flag(s.Derived)
				if s.Malicious {
					attackWindows++
					attackInstr += int(s.Instructions)
					if !flag {
						fn++
					}
				} else {
					benignWindows++
					benignInstr += int(s.Instructions)
					if flag {
						fp++
					}
				}
			}
			if benignInstr > 0 {
				row.FPPer10K = float64(fp) / float64(benignInstr) * 10_000
			}
			if attackInstr > 0 {
				row.FNPer10K = float64(fn) / float64(attackInstr) * 10_000
			}
			if benignWindows > 0 {
				row.FPR = float64(fp) / float64(benignWindows)
			}
			if attackWindows > 0 {
				row.FNR = float64(fn) / float64(attackWindows)
			}
			row.Windows = benignWindows
			row.AttackWnds = attackWindows
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// String renders the FP/FN table.
func (r Figure15Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 15: False positives / negatives on unseen traffic\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s interval=%-6d FP/10k=%.4f FN/10k=%.4f (FPR=%.4f FNR=%.4f over %d benign / %d attack windows)\n",
			row.Detector, row.Interval, row.FPPer10K, row.FNPer10K, row.FPR, row.FNR, row.Windows, row.AttackWnds)
	}
	return b.String()
}

// Figure16Row is one defense configuration's end-to-end overhead.
type Figure16Row struct {
	Name      string
	Policy    sim.Policy
	Gating    string // "always-on", "evax", "perspectron"
	Overhead  float64
	Reduction float64 // vs the always-on row of the same policy
}

// Figure16Result is the end-to-end defense performance comparison.
type Figure16Result struct {
	Rows []Figure16Row
}

// Figure16 measures the overhead of each mitigation always-on versus gated
// by the EVAX and PerSpectron detectors, over the benign suite with unseen
// seeds (performance of malicious programs is not a concern, per the paper).
func Figure16(lab *Lab) Figure16Result {
	const maxInstr = 150_000
	policies := []struct {
		name   string
		policy sim.Policy
	}{
		{"Fences-SpectreSafe", sim.PolicyFenceAfterBranch},
		{"InvisiSpec-Spectre", sim.PolicyInvisiSpecSpectre},
		{"Fences-FuturisticSafe", sim.PolicyFenceBeforeLoad},
		{"InvisiSpec-Futuristic", sim.PolicyInvisiSpecFuturistic},
	}

	// run fans the benign suite out over the engine; detector is nil for
	// always-on gating, otherwise each (workload) job wraps a private
	// detector clone (scoring mutates forward-pass scratch). Per-workload
	// overheads merge in suite order before the mean, so the row is
	// byte-identical to the sequential sweep.
	run := func(detector func() *detect.Detector, policy sim.Policy) float64 {
		dcfg := defense.DefaultConfig(policy)
		dcfg.SampleInterval = lab.Opts.Corpus.Interval
		dcfg.SecureWindow = 20_000
		suite := workload.All()
		ovs := runner.Map(lab.runnerOpts(), len(suite), func(wi int) float64 {
			fl := defense.Flagger(defense.AlwaysOn)
			if detector != nil {
				fl = defense.NewDetectorFlagger(detector(), lab.DS)
			}
			p := suite[wi].Build(int64(wi)*37+901, lab.Opts.Corpus.Scale)
			base := defense.RunProgram(sim.DefaultConfig(), suite[wi].Build(int64(wi)*37+901, lab.Opts.Corpus.Scale), defense.NeverOn, dcfg, maxInstr)
			prot := defense.RunProgram(sim.DefaultConfig(), p, fl, dcfg, maxInstr)
			return defense.Overhead(prot, base)
		})
		return metrics.Mean(ovs)
	}

	var res Figure16Result
	for _, pol := range policies {
		always := run(nil, pol.policy)
		ev := run(lab.EVAX.Clone, pol.policy)
		ps := run(lab.PerSpec.Clone, pol.policy)
		res.Rows = append(res.Rows,
			Figure16Row{pol.name, pol.policy, "always-on", always, 0},
			Figure16Row{"PerSpectron-" + pol.name, pol.policy, "perspectron", ps, 1 - safeDiv(ps, always)},
			Figure16Row{"EVAX-" + pol.name, pol.policy, "evax", ev, 1 - safeDiv(ev, always)},
		)
	}
	return res
}

func safeDiv(a, b float64) float64 {
	if fmath.Zero(b) {
		return 0
	}
	return a / b
}

// String renders the overhead table.
func (r Figure16Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 16: End-to-end defense performance (overhead vs unprotected)\n")
	for _, row := range r.Rows {
		if row.Gating == "always-on" {
			fmt.Fprintf(&b, "  %-36s overhead=%6.2f%%\n", row.Name, 100*row.Overhead)
		} else {
			fmt.Fprintf(&b, "  %-36s overhead=%6.2f%%  (%.0f%% reduction)\n",
				row.Name, 100*row.Overhead, 100*row.Reduction)
		}
	}
	return b.String()
}
