package experiments

import (
	"fmt"
	"strings"

	"evax/internal/featureng"
	"evax/internal/sim"
)

// TableIResult is the engineered security-HPC list (paper Table I).
type TableIResult struct {
	Features []featureng.ANDFeature
}

// TableI returns the engineered security HPCs mined from the lab's trained
// AM-GAN generator.
func TableI(lab *Lab) TableIResult { return TableIResult{Features: lab.Mined} }

// String renders the table.
func (r TableIResult) String() string {
	var b strings.Builder
	b.WriteString("Table I: Security HPCs engineered by EVAX (mined from the AM-GAN generator)\n")
	b.WriteString("  #  engineered counter\n")
	for i, f := range r.Features {
		fmt.Fprintf(&b, "  %-2d %s\n", i+1, f.Name)
	}
	return b.String()
}

// TableIIRow is one parameter of the simulated architecture.
type TableIIRow struct{ Name, Value string }

// TableIIResult echoes the simulated architecture (paper Table II).
type TableIIResult struct {
	Rows []TableIIRow
}

// TableII reports the machine configuration used by every experiment.
func TableII() TableIIResult {
	c := sim.DefaultConfig()
	rows := []TableIIRow{
		{"Architecture", "X86-like O3 single core, single thread (2.0 GHz model)"},
		{"Core", fmt.Sprintf("Tournament branch predictor, %d RAS entries, %d BTB entries",
			c.Branch.RASEntries, c.Branch.BTBEntries)},
		{"Queues", fmt.Sprintf("LQEntries=%d, SQEntries=%d, ROBEntries=%d", c.LQEntries, c.SQEntries, c.ROBEntries)},
		{"Width", fmt.Sprintf("fetch/disp/issue/commit %d wide", c.FetchWidth)},
		{"Registers", fmt.Sprintf("numPhysIntRegs=%d", c.PhysIntRegs)},
		{"L1 I-Cache", fmt.Sprintf("%dKB, %dB line, %d-way", c.L1I.Size>>10, c.L1I.LineSize, c.L1I.Assoc)},
		{"L1 D-Cache", fmt.Sprintf("%dKB, %dB line, %d-way", c.L1D.Size>>10, c.L1D.LineSize, c.L1D.Assoc)},
		{"L2 Shared Cache", fmt.Sprintf("%dMB bank, %dB line, %d-way, responseLatency=%d, mshrs=%d, writeBuffers=%d, tagLatency=%d, dataLatency=%d",
			c.L2.Size>>20, c.L2.LineSize, c.L2.Assoc, c.L2.RespLatency, c.L2.MSHRs, c.L2.WriteBufs, c.L2.TagLatency, c.L2.DataLatency)},
		{"DRAM", fmt.Sprintf("%d banks, %dKB rows, TRR trackers=%d", c.DRAM.Banks, c.DRAM.RowBytes>>10, c.DRAM.TRRTrackers)},
	}
	return TableIIResult{Rows: rows}
}

// String renders the table.
func (r TableIIResult) String() string {
	var b strings.Builder
	b.WriteString("Table II: Parameters of the simulated architecture\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-16s %s\n", row.Name, row.Value)
	}
	return b.String()
}
