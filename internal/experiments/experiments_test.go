package experiments

import (
	"strings"
	"sync"
	"testing"

	"evax/internal/isa"
	"evax/internal/sim"
)

// The quick lab is expensive (corpus + GAN + detectors); tests share one.
var (
	labOnce sync.Once
	quick   *Lab
)

func quickLab(t *testing.T) *Lab {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment lab build")
	}
	labOnce.Do(func() { quick = NewLab(QuickLabOptions()) })
	return quick
}

func TestLabPipelineArtifacts(t *testing.T) {
	lab := quickLab(t)
	if len(lab.DS.Samples) < 500 {
		t.Fatalf("corpus too small: %s", lab.DS.Stats())
	}
	if got := len(lab.DS.Classes()); got != int(isa.NumClasses) {
		t.Fatalf("classes in corpus = %d, want %d", got, isa.NumClasses)
	}
	if len(lab.Mined) != 12 {
		t.Fatalf("mined %d engineered HPCs, want 12", len(lab.Mined))
	}
	if lab.PerSpec.Plan.Dim() != 106 {
		t.Fatalf("PerSpectron dim = %d", lab.PerSpec.Plan.Dim())
	}
	if lab.EVAX.Plan.Dim() != 145 {
		t.Fatalf("EVAX dim = %d", lab.EVAX.Plan.Dim())
	}
}

func TestTableI(t *testing.T) {
	lab := quickLab(t)
	r := TableI(lab)
	if len(r.Features) != 12 {
		t.Fatalf("Table I rows = %d, want 12", len(r.Features))
	}
	out := r.String()
	if !strings.Contains(out, "AND") {
		t.Fatal("Table I rendering missing AND combinations")
	}
	for _, f := range r.Features {
		if f.A >= f.B {
			t.Fatalf("unordered engineered pair %+v", f)
		}
	}
}

func TestTableII(t *testing.T) {
	r := TableII()
	out := r.String()
	for _, want := range []string{"ROBEntries=192", "LQEntries=32", "4096 BTB", "16 RAS", "64KB", "2MB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6StyleSeparation(t *testing.T) {
	lab := quickLab(t)
	r := Figure6(lab)
	if r.LossBC >= r.LossAC {
		t.Fatalf("generated %s not closer to its own type: same=%.5f cross=%.5f",
			r.BaseClass, r.LossBC, r.LossAC)
	}
	if len(r.GramB) != len(r.Features) {
		t.Fatalf("gram dimension %d != features %d", len(r.GramB), len(r.Features))
	}
}

func TestFigure7StyleLossDecreases(t *testing.T) {
	lab := quickLab(t)
	r := Figure7(lab)
	if len(r.StyleLoss) == 0 {
		t.Fatal("no style loss trace")
	}
	final := r.StyleLoss[len(r.StyleLoss)-1]
	if final >= r.InitialStyleLoss {
		t.Fatalf("style loss did not decrease: initial %.5f, final %.5f",
			r.InitialStyleLoss, final)
	}
}

func TestFigure9to11Separation(t *testing.T) {
	lab := quickLab(t)
	r := Figure9to11(lab)
	if len(r.Rows) < 3 {
		t.Fatalf("only %d separation rows", len(r.Rows))
	}
	// Each highlighted HPC must elevate for at least one of its attack
	// classes relative to benign.
	for _, row := range r.Rows {
		elevated := false
		for _, v := range row.Attacks {
			if v > 1.5*row.BenignMean {
				elevated = true
			}
		}
		if !elevated {
			t.Errorf("%s does not separate its classes: %+v", row.Feature, row)
		}
	}
}

func TestFigure14AdaptiveIPC(t *testing.T) {
	lab := quickLab(t)
	r := Figure14(lab)
	if r.Baseline <= 0 {
		t.Fatal("no baseline IPC")
	}
	get := func(name string) Figure14Series {
		for _, s := range r.Series {
			if strings.Contains(s.Name, name) {
				return s
			}
		}
		t.Fatalf("series %q missing", name)
		return Figure14Series{}
	}
	evaxFence := get("EVAX-SpectreSafe")
	// The adaptive architecture keeps IPC near baseline (paper: above
	// 0.85 in most regions).
	if evaxFence.MeanIPC < 0.85*r.Baseline {
		t.Fatalf("EVAX-SpectreSafe IPC %.3f below 85%% of baseline %.3f",
			evaxFence.MeanIPC, r.Baseline)
	}
	if len(get("InvisiSpec").Timeline) == 0 {
		t.Fatal("no IPC timeline recorded")
	}
}

func TestFigure15FalseRates(t *testing.T) {
	lab := quickLab(t)
	r := Figure15(lab)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	byKey := map[string]Figure15Row{}
	for _, row := range r.Rows {
		if row.Interval == lab.Opts.Corpus.Interval {
			byKey[row.Detector] = row
		}
		// Detection of attacks must be near-total at every cadence.
		if row.FNR > 0.1 {
			t.Errorf("%s at interval %d: FNR %.3f too high", row.Detector, row.Interval, row.FNR)
		}
	}
	ps, ev := byKey["PerSpectron"], byKey["EVAX"]
	// The paper's headline: EVAX improves false positives over
	// PerSpectron.
	if ev.FPPer10K > ps.FPPer10K {
		t.Fatalf("EVAX FP/10k (%.4f) above PerSpectron (%.4f)", ev.FPPer10K, ps.FPPer10K)
	}
	// Absolute practicality: a handful of FPs per 10k instructions max.
	if ev.FPPer10K > 1.0 {
		t.Fatalf("EVAX FP/10k = %.4f, not deployment-practical", ev.FPPer10K)
	}
}

func TestFigure16OverheadReduction(t *testing.T) {
	lab := quickLab(t)
	r := Figure16(lab)
	always := map[sim.Policy]float64{}
	for _, row := range r.Rows {
		if row.Gating == "always-on" {
			always[row.Policy] = row.Overhead
		}
	}
	// Always-on fencing must be expensive; InvisiSpec cheaper but real.
	if always[sim.PolicyFenceAfterBranch] < 0.3 {
		t.Fatalf("always-on Spectre fencing overhead %.3f implausibly low", always[sim.PolicyFenceAfterBranch])
	}
	if always[sim.PolicyFenceBeforeLoad] <= always[sim.PolicyFenceAfterBranch] {
		t.Fatal("futuristic fencing not costlier than Spectre fencing")
	}
	if always[sim.PolicyInvisiSpecSpectre] >= always[sim.PolicyFenceAfterBranch] {
		t.Fatal("InvisiSpec not cheaper than fencing")
	}
	if always[sim.PolicyInvisiSpecFuturistic] <= always[sim.PolicyInvisiSpecSpectre] {
		t.Fatal("futuristic InvisiSpec not costlier than Spectre InvisiSpec")
	}
	for _, row := range r.Rows {
		if row.Gating == "evax" {
			// The headline 95% overhead reduction; quick corpora often
			// reach ~100% because no benign window false-positives.
			if row.Reduction < 0.9 {
				t.Errorf("%s: EVAX gating reduction %.2f below 90%%", row.Name, row.Reduction)
			}
		}
	}
}

func TestFigure17EvasiveResilience(t *testing.T) {
	lab := quickLab(t)
	r := Figure17(lab, 4)
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(r.Rows))
	}
	if r.MeanAUCEVAX <= r.MeanAUCPerSpectron {
		t.Fatalf("EVAX mean AUC %.3f not above PerSpectron %.3f",
			r.MeanAUCEVAX, r.MeanAUCPerSpectron)
	}
	if r.MeanAUCEVAX < 0.9 {
		t.Fatalf("EVAX mean AUC %.3f below 0.9 on evasive tools", r.MeanAUCEVAX)
	}
}

func TestFigure18AdversarialML(t *testing.T) {
	lab := quickLab(t)
	r := Figure18(lab)
	if r.Attempts < 50 {
		t.Fatalf("only %d AML attempts", r.Attempts)
	}
	if r.AccEVAX <= r.AccPFuzzer {
		t.Fatalf("EVAX accuracy under AML (%.2f) not above fuzzer-hardened PerSpectron (%.2f)",
			r.AccEVAX, r.AccPFuzzer)
	}
	if r.AccEVAX < 0.8 {
		t.Fatalf("EVAX accuracy under AML %.2f below 0.8", r.AccEVAX)
	}
	// Over-evasion must disable the attack (the margin argument).
	if r.DisabledShare < 0.5 {
		t.Fatalf("only %.2f of unconstrained evasions disabled the attack", r.DisabledShare)
	}
}

func TestFigure19KFold(t *testing.T) {
	lab := quickLab(t)
	r := Figure19(lab, []isa.Class{isa.ClassMeltdown, isa.ClassDRAMA, isa.ClassFlushConflict})
	if len(r.Rows) != 3 {
		t.Fatalf("folds = %d, want 3", len(r.Rows))
	}
	if r.MeanEVAX > r.MeanPerSpec {
		t.Fatalf("EVAX mean generalization error %.3f above PerSpectron %.3f",
			r.MeanEVAX, r.MeanPerSpec)
	}
}

func TestFigure20DeepNets(t *testing.T) {
	lab := quickLab(t)
	r := Figure20(lab, []int{1, 8})
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byKey := func(depth int, mode string) Figure20Row {
		for _, row := range r.Rows {
			if row.HiddenLayers == depth && row.Training == mode {
				return row
			}
		}
		t.Fatalf("row %d/%s missing", depth, mode)
		return Figure20Row{}
	}
	// EVAX training must not hurt the shallow model and must lift the
	// deep model's median (the paper's Figure 20 shape).
	deepTrad := byKey(8, "traditional")
	deepEVAX := byKey(8, "evax")
	if deepEVAX.MedianAcc < deepTrad.MedianAcc {
		t.Fatalf("EVAX training lowered deep median: %.3f vs %.3f",
			deepEVAX.MedianAcc, deepTrad.MedianAcc)
	}
	if byKey(1, "evax").MedianAcc < 0.9 {
		t.Fatal("shallow EVAX-trained detector inaccurate")
	}
}

func TestZeroDayTPR(t *testing.T) {
	lab := quickLab(t)
	classes := []isa.Class{isa.ClassRDRANDCovert, isa.ClassFlushConflict, isa.ClassDRAMA}
	r := ZeroDayTPR(lab, classes)
	if len(r.Rows) != len(classes) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.TPREVAX < row.TPRPerSpec-0.05 {
			t.Errorf("%s: zero-day EVAX TPR %.2f below PerSpectron %.2f",
				row.Class, row.TPREVAX, row.TPRPerSpec)
		}
		if row.TPRRetrain < 0.9 {
			t.Errorf("%s: retrained TPR %.2f below 0.9", row.Class, row.TPRRetrain)
		}
	}
}

func TestHardenAdversarialMonotone(t *testing.T) {
	lab := quickLab(t)
	d := lab.HardenAdversarial(lab.EVAX, 2)
	for _, l := range d.Net.Layers {
		for o := range l.W {
			for i := range l.W[o] {
				if l.W[o][i] < 0 {
					t.Fatalf("hardened detector has negative weight %v", l.W[o][i])
				}
			}
		}
	}
}

func TestEvalCorpusNormalizedByTraining(t *testing.T) {
	lab := quickLab(t)
	samples := lab.EvalCorpus(9100)
	if len(samples) < 100 {
		t.Fatalf("eval corpus too small: %d", len(samples))
	}
	for i := range samples {
		for _, v := range samples[i].Derived {
			if v < 0 || v > 1 {
				t.Fatalf("unnormalized eval value %v", v)
			}
		}
	}
}
