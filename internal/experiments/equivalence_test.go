package experiments

import (
	"reflect"
	"testing"

	"evax/internal/isa"
)

// TestExperimentsParallelEquivalence checks the runner determinism contract
// at the experiment layer: a figure driver re-run with a different worker
// count must return a bit-identical result. Figure 17 covers the fuzz-sweep
// shape (per-tool jobs with cloned detectors); ZeroDayTPR covers the
// retrain-per-fold shape. Both share the quick lab, so only the fan-out
// width changes between runs.
func TestExperimentsParallelEquivalence(t *testing.T) {
	lab := quickLab(t)
	restore := lab.Opts.Jobs
	defer func() { lab.Opts.Jobs = restore }()

	classes := []isa.Class{isa.ClassRDRANDCovert, isa.ClassDRAMA}

	lab.Opts.Jobs = 1
	seqFig := Figure17(lab, 2)
	seqZD := ZeroDayTPR(lab, classes)

	for _, jobs := range []int{4, 0} { // 0 = GOMAXPROCS
		lab.Opts.Jobs = jobs
		if got := Figure17(lab, 2); !reflect.DeepEqual(seqFig, got) {
			t.Fatalf("Figure17 at jobs=%d diverged from the sequential reference", jobs)
		}
		if got := ZeroDayTPR(lab, classes); !reflect.DeepEqual(seqZD, got) {
			t.Fatalf("ZeroDayTPR at jobs=%d diverged from the sequential reference", jobs)
		}
	}
}
