package experiments

import (
	"context"
	"fmt"
	"strings"

	"evax/internal/attacks"
	"evax/internal/checkpoint"
	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/evasion"
	"evax/internal/gram"
	"evax/internal/isa"
	"evax/internal/metrics"
	"evax/internal/runner"
	"evax/internal/sim"
)

// Figure6Result compares leakage-phase Gram matrices: a base attack (B), a
// different-type attack (A), and an AM-GAN-generated sample of B's type (C).
// Same-type pairs have low style loss; cross-type pairs high.
type Figure6Result struct {
	Features   []string
	BaseClass  isa.Class // B and C's type
	OtherClass isa.Class // A's type
	GramA      [][]float64
	GramB      [][]float64
	GramC      [][]float64
	LossBC     float64 // same type: near zero
	LossAC     float64 // cross type: larger
}

// Figure6 reproduces the Gram-matrix interpretability check with
// Spectre-RSB as the conditioning type and Meltdown as the contrast.
func Figure6(lab *Lab) Figure6Result {
	fs := detect.EVAXBase()
	featNames := []string{"commit.Faults", "branchPred.RASUnderflows", "lsq.squashedLoads"}
	var featPos []int
	for _, n := range featNames {
		for i := 0; i < fs.BaseDim(); i++ {
			if fs.NameAt(i) == n {
				featPos = append(featPos, i)
			}
		}
	}
	leakWindows := func(c isa.Class) [][]float64 {
		var out [][]float64
		for i := range lab.DS.Samples {
			s := &lab.DS.Samples[i]
			if s.Class == c && s.HasPhase(isa.PhaseLeak) {
				base := fs.Base(s.Derived)
				row := make([]float64, len(featPos))
				for k, p := range featPos {
					row[k] = base[p]
				}
				out = append(out, row)
			}
		}
		return out
	}
	project := func(vs [][]float64) [][]float64 {
		out := make([][]float64, len(vs))
		for i, v := range vs {
			row := make([]float64, len(featPos))
			for k, p := range featPos {
				row[k] = v[p]
			}
			out[i] = row
		}
		return out
	}
	res := Figure6Result{
		Features:   featNames,
		BaseClass:  isa.ClassSpectreRSB,
		OtherClass: isa.ClassMeltdown,
	}
	a := leakWindows(res.OtherClass)
	b := leakWindows(res.BaseClass)
	c := project(lab.GAN.GenerateFiltered(lab.ClassIndex(res.BaseClass), 32, 6))
	res.GramA = gram.Matrix(a)
	res.GramB = gram.Matrix(b)
	res.GramC = gram.Matrix(c)
	res.LossBC = gram.StyleLoss(res.GramB, res.GramC, 1)
	res.LossAC = gram.StyleLoss(res.GramA, res.GramC, 1)
	return res
}

// String renders the style-loss comparison.
func (r Figure6Result) String() string {
	return fmt.Sprintf(
		"Figure 6: Gram-matrix attack style (features %v)\n"+
			"  L_GM(%s real, %s generated) = %.5f (same type: low)\n"+
			"  L_GM(%s real, %s generated) = %.5f (cross type: high)\n",
		r.Features, r.BaseClass, r.BaseClass, r.LossBC, r.OtherClass, r.BaseClass, r.LossAC)
}

// Figure7Result is the style-loss trace over AM-GAN training epochs,
// starting from the untrained generator's style loss.
type Figure7Result struct {
	InitialStyleLoss float64
	StyleLoss        []float64
	DLoss            []float64
	GLoss            []float64
}

// Figure7 returns the quality trace of the lab's AM-GAN training run.
func Figure7(lab *Lab) Figure7Result {
	r := Figure7Result{InitialStyleLoss: lab.GANTrace.InitialStyleLoss}
	for _, e := range lab.GANTrace.Epochs {
		r.StyleLoss = append(r.StyleLoss, e.StyleLoss)
		r.DLoss = append(r.DLoss, e.DLoss)
		r.GLoss = append(r.GLoss, e.GLoss)
	}
	return r
}

// String renders the trace.
func (r Figure7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: Attack style loss during AM-GAN training\n")
	fmt.Fprintf(&b, "  untrained L_GM=%.5f\n", r.InitialStyleLoss)
	for i := range r.StyleLoss {
		fmt.Fprintf(&b, "  epoch %2d  L_GM=%.5f  dLoss=%.4f  gLoss=%.4f\n",
			i, r.StyleLoss[i], r.DLoss[i], r.GLoss[i])
	}
	return b.String()
}

// Figure17Row is one detector's resilience against one evasive-tool family.
type Figure17Row struct {
	Tool     string
	Detector string
	AUC      float64
	Samples  int
}

// Figure17Result is the evasive-technology ROC comparison.
type Figure17Result struct {
	Rows []Figure17Row
	// MeanAUCPerSpectron / MeanAUCEVAX aggregate across tools.
	MeanAUCPerSpectron float64
	MeanAUCEVAX        float64
}

// evasiveSamples builds the attack sample set for one tool family, plus
// mutated known attacks (the "manual evasion" set).
func (lab *Lab) evasiveSamples(tool string, seeds int) []dataset.Sample {
	cfg := sim.DefaultConfig()
	o := lab.Opts.Corpus
	var progs []*isa.Program
	for s := 0; s < seeds; s++ {
		switch tool {
		case "transynther":
			progs = append(progs, evasion.Transynther(int64(s)+501, 8))
		case "trrespass":
			progs = append(progs, evasion.TRRespass(int64(s)+601, 3))
		case "osiris":
			progs = append(progs, evasion.Osiris(int64(s)+701, 4))
		case "mutation":
			specs := attacks.All()
			spec := specs[s%len(specs)]
			p := spec.Build(int64(s)+801, 12)
			progs = append(progs, evasion.Mutate(p, evasion.MutateOptions{
				Strength: 0.35, CacheNoise: true, SyscallNoise: s%2 == 0, Seed: int64(s) + 31,
			}))
		}
	}
	// Each program's simulation is independent; windows merge in program
	// order, identical to the sequential loop for any worker count.
	out := runner.FlatMap(lab.runnerOpts(), len(progs), func(pi int) []dataset.Sample {
		// Every tool output is additionally diluted with benign noise
		// (bandwidth evasion): the signature is spread thin across
		// windows while the attack keeps running.
		mp := evasion.Mutate(progs[pi], evasion.MutateOptions{
			Strength: 1.8, CacheNoise: true, Seed: int64(pi) + 97,
		})
		return dataset.Collect(cfg, mp, o.Interval, o.MaxInstr)
	})
	for i := range out {
		lab.DS.NormalizeInPlace(out[i].Derived)
	}
	return out
}

// toolResult is one fig17 job's output. Fields are exported for the
// checkpoint journal's gob codec.
type toolResult struct {
	AUCPS, AUCEV float64
	Evasive      int
}

// Figure17 scores both detectors on evasive-tool samples mixed with unseen
// benign traffic and reports per-tool AUC.
func Figure17(lab *Lab, seedsPerTool int) Figure17Result {
	r, err := Figure17Ctx(context.Background(), lab, seedsPerTool, nil)
	if err != nil {
		// Unreachable without a context or journal (panics re-raise).
		panic(err)
	}
	return r
}

// Figure17Ctx is the fig17 fuzz sweep with cooperative cancellation and
// optional checkpoint/resume: each tool family is one journaled job, so a
// killed sweep resumes with only the missing tools re-simulated and the
// result is bit-identical to an uninterrupted run. Open the journal with
// lab.Figure17Key(seedsPerTool).
func Figure17Ctx(ctx context.Context, lab *Lab, seedsPerTool int, jrn *checkpoint.Journal) (Figure17Result, error) {
	benign := lab.benignEval(4500)
	tools := []string{"transynther", "trrespass", "osiris", "mutation"}
	// One job per tool family; each scores through private detector clones
	// (scoring mutates forward-pass scratch).
	perTool, _, err := checkpoint.Run(ctx, jrn, lab.campaignOpts(), len(tools),
		func(_ context.Context, k int) (toolResult, error) {
			ps, ev := lab.PerSpec.Clone(), lab.EVAX.Clone()
			evasive := lab.evasiveSamples(tools[k], seedsPerTool)
			var scoresPS, scoresEV []float64
			var labels []bool
			add := func(s *dataset.Sample, label bool) {
				scoresPS = append(scoresPS, ps.Score(s.Derived))
				scoresEV = append(scoresEV, ev.Score(s.Derived))
				labels = append(labels, label)
			}
			for i := range evasive {
				add(&evasive[i], true)
			}
			for i := range benign {
				add(&benign[i], false)
			}
			return toolResult{
				AUCPS:   metrics.AUCFromScores(scoresPS, labels),
				AUCEV:   metrics.AUCFromScores(scoresEV, labels),
				Evasive: len(evasive),
			}, nil
		})
	if err != nil {
		return Figure17Result{}, err
	}
	var res Figure17Result
	var sumPS, sumEV float64
	for k, tr := range perTool {
		res.Rows = append(res.Rows,
			Figure17Row{tools[k], "PerSpectron", tr.AUCPS, tr.Evasive},
			Figure17Row{tools[k], "EVAX", tr.AUCEV, tr.Evasive},
		)
		sumPS += tr.AUCPS
		sumEV += tr.AUCEV
	}
	res.MeanAUCPerSpectron = sumPS / float64(len(tools))
	res.MeanAUCEVAX = sumEV / float64(len(tools))
	return res, nil
}

// benignEval collects unseen benign windows normalized by the training set.
func (lab *Lab) benignEval(seedOffset int64) []dataset.Sample {
	o := lab.Opts.Corpus
	o.SeedOffset = seedOffset
	o.BenignOnly = true
	samples := dataset.CollectAll(o)
	for i := range samples {
		lab.DS.NormalizeInPlace(samples[i].Derived)
	}
	return samples
}

// String renders the resilience table.
func (r Figure17Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 17: Resiliency (AUC) against evasive attack-generation tools\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %-12s AUC=%.3f (%d samples)\n", row.Tool, row.Detector, row.AUC, row.Samples)
	}
	fmt.Fprintf(&b, "  mean AUC: PerSpectron=%.3f EVAX=%.3f\n", r.MeanAUCPerSpectron, r.MeanAUCEVAX)
	return b.String()
}

// Figure18Result reports the adversarial-ML experiment: accuracy on AML
// samples for a fuzzer-hardened PerSpectron versus EVAX, plus how many
// evasion attempts were forced past the leakage floors (disabling the
// attack).
type Figure18Result struct {
	AccPFuzzer float64 // detected fraction under AML (fuzzer-hardened)
	AccEVAX    float64
	// DisabledShare is the share of unconstrained evasions that crossed
	// leakage floors against EVAX — evasions that kill the attack.
	DisabledShare float64
	Attempts      int
}

// HardenAdversarial returns a copy-trained detector whose classification
// margin has been pushed in the worst adversarial directions: for several
// rounds, floor-respecting AML perturbations of the malicious training
// samples (the reachable evasion region, since leakage floors bound how far
// a *working* attack can move) are added to the training set labelled
// malicious. This realizes the paper's core defense: once the boundary lies
// beyond the leakage window, any evasion that crosses it kills the attack.
func (lab *Lab) HardenAdversarial(base *detect.Detector, rounds int) *detect.Detector {
	fs := base.Plan
	d := detect.NewPerceptron(lab.Opts.Seed+31, fs)

	var benign [][]float64
	var trainVecs [][]float64
	var trainLabels []bool
	perClass := map[isa.Class][][]float64{}
	for i := range lab.DS.Samples {
		s := &lab.DS.Samples[i]
		v := fs.Base(s.Derived)
		trainVecs = append(trainVecs, v)
		trainLabels = append(trainLabels, s.Malicious)
		if !s.Malicious {
			benign = append(benign, v)
		} else if s.HasPhase(isa.PhaseLeak) {
			perClass[s.Class] = append(perClass[s.Class], v)
		}
	}
	gen, genLabels := lab.GeneratedAugmentation(lab.Opts.GenPerClass)
	trainVecs = append(trainVecs, gen...)
	trainLabels = append(trainLabels, genLabels...)

	opts := detect.DefaultTrainOptions()
	opts.Monotone = true // close the negative-weight evasion channel
	d.TrainVectors(trainVecs, trainLabels, opts)
	lab.tuneThreshold(d)
	for r := 0; r < rounds; r++ {
		var advVecs [][]float64
		for c := isa.ClassBenign + 1; c < isa.NumClasses; c++ {
			vecs := perClass[c]
			if len(vecs) < 3 {
				continue
			}
			floors := evasion.FloorsFromSamples(vecs, benign, 1.0)
			aml := evasion.NewAML(floors)
			aml.MaxIter = 120
			for k := 0; k < len(vecs) && k < 8; k++ {
				// Descend to the worst-case reachable point — the
				// floor-constrained minimum — and make it part of
				// the malicious class.
				res := aml.Descend(d, vecs[k])
				if res.Evaded {
					advVecs = append(advVecs, res.Adv)
				}
			}
		}
		if len(advVecs) == 0 {
			break // margin already beyond every reachable evasion
		}
		for range advVecs {
			trainLabels = append(trainLabels, true)
		}
		trainVecs = append(trainVecs, advVecs...)
		d = detect.NewPerceptron(lab.Opts.Seed+31+int64(r), fs)
		d.TrainVectors(trainVecs, trainLabels, opts)
		lab.tuneThreshold(d)
	}
	return d
}

// Figure18 runs the white-box AML attack against both detectors on the
// corpus's attack leak windows.
func Figure18(lab *Lab) Figure18Result {
	// Fuzzer-hardened PerSpectron: augmented with evasive-tool samples.
	fuzz := lab.evasiveSamples("transynther", 4)
	fuzz = append(fuzz, lab.evasiveSamples("osiris", 4)...)
	psFS := detect.PerSpectron()
	var fuzzVec [][]float64
	var fuzzLab []bool
	for i := range fuzz {
		fuzzVec = append(fuzzVec, psFS.Base(fuzz[i].Derived))
		fuzzLab = append(fuzzLab, true)
	}
	pfuzzer := lab.TrainDetectorLike("pfuzzer", lab.allIdx(), fuzzVec, fuzzLab)

	// EVAX's vaccinated, adversarially-hardened detector. Both arms run
	// at the paper's high-sensitivity operating point.
	hardened := lab.HardenAdversarial(lab.EVAX, 3)
	lab.tuneThresholdAt(pfuzzer, 0.04)
	lab.tuneThresholdAt(hardened, 0.04)

	// Floors per class from the corpus (leak-critical medians).
	run := func(d *detect.Detector) (detected, attempts, disabled int) {
		fs := d.Plan
		var benign [][]float64
		for i := range lab.DS.Samples {
			if !lab.DS.Samples[i].Malicious {
				benign = append(benign, fs.Base(lab.DS.Samples[i].Derived))
			}
		}
		perClass := map[isa.Class][][]float64{}
		for i := range lab.DS.Samples {
			s := &lab.DS.Samples[i]
			if s.Malicious && s.HasPhase(isa.PhaseLeak) {
				perClass[s.Class] = append(perClass[s.Class], fs.Base(s.Derived))
			}
		}
		for c := isa.ClassBenign + 1; c < isa.NumClasses; c++ {
			vecs := perClass[c]
			if len(vecs) < 3 {
				continue
			}
			floors := evasion.FloorsFromSamples(vecs, benign, 1.0)
			aml := evasion.NewAML(floors)
			for k := 0; k < len(vecs) && k < 10; k++ {
				attempts++
				res := aml.Perturb(d, vecs[k], true)
				if !res.Evaded {
					detected++
				}
				// What would an unconstrained attacker achieve?
				free := aml.Perturb(d, vecs[k], false)
				if free.Evaded && !free.AttackAlive {
					disabled++
				}
			}
		}
		return
	}
	detPF, attPF, _ := run(pfuzzer)
	detEV, attEV, disEV := run(hardened)
	res := Figure18Result{Attempts: attEV}
	if attPF > 0 {
		res.AccPFuzzer = float64(detPF) / float64(attPF)
	}
	if attEV > 0 {
		res.AccEVAX = float64(detEV) / float64(attEV)
		res.DisabledShare = float64(disEV) / float64(attEV)
	}
	return res
}

// String renders the AML comparison.
func (r Figure18Result) String() string {
	return fmt.Sprintf("Figure 18: Accuracy under adversarial-ML attack (%d attempts)\n"+
		"  PerSpectron+Fuzzer hardening: %.1f%%\n"+
		"  EVAX (AM-GAN vaccination):    %.1f%%\n"+
		"  unconstrained evasions that disabled the attack vs EVAX: %.1f%%\n",
		r.Attempts, 100*r.AccPFuzzer, 100*r.AccEVAX, 100*r.DisabledShare)
}

// Figure19Row is one fold of the zero-day cross-validation.
type Figure19Row struct {
	HeldOut     isa.Class
	ErrPerSpec  float64
	ErrPFuzzer  float64
	ErrEVAX     float64
	TestSamples int
}

// Figure19Result is the k-fold generalization-error comparison.
type Figure19Result struct {
	Rows []Figure19Row
	// Mean generalization errors.
	MeanPerSpec, MeanPFuzzer, MeanEVAX float64
}

// Figure19 runs attack-holdout cross-validation. When only is non-empty,
// folds are restricted to those classes (tests use a subset; the benchmark
// runs all).
func Figure19(lab *Lab, only []isa.Class) Figure19Result {
	r, err := Figure19Ctx(context.Background(), lab, only, nil)
	if err != nil {
		// Unreachable without a context or journal (panics re-raise).
		panic(err)
	}
	return r
}

// Figure19Ctx is the fig19 k-fold driver with cooperative cancellation and
// optional checkpoint/resume: each fold's three-detector retrain is one
// journaled job, so a killed cross-validation resumes with only the missing
// folds retrained and the rows are bit-identical to an uninterrupted run.
// Open the journal with lab.Figure19Key(only).
func Figure19Ctx(ctx context.Context, lab *Lab, only []isa.Class, jrn *checkpoint.Journal) (Figure19Result, error) {
	folds := lab.DS.KFoldByAttack(lab.Opts.Seed)
	filter := map[isa.Class]bool{}
	for _, c := range only {
		filter[c] = true
	}
	// Shared fuzzer augmentation for the P.Fuzzer arm.
	fuzz := lab.evasiveSamples("transynther", 3)
	fuzz = append(fuzz, lab.evasiveSamples("trrespass", 2)...)
	psFS := detect.PerSpectron()

	var selected []dataset.Split
	for _, fold := range folds {
		if len(only) > 0 && !filter[fold.HeldOut] {
			continue
		}
		selected = append(selected, fold)
	}
	// Each fold retrains three detectors from scratch — the dominant cost
	// of the figure. Folds are independent, so they fan out over the
	// engine; rows land in fold order regardless of worker count.
	rows, _, err := checkpoint.Run(ctx, jrn, lab.campaignOpts(), len(selected),
		func(_ context.Context, k int) (Figure19Row, error) {
			fold := selected[k]
			var fuzzVec [][]float64
			var fuzzLab []bool
			for i := range fuzz {
				// Exclude fuzzer samples of the held-out class from the
				// P.Fuzzer training augmentation.
				if fuzz[i].Class == fold.HeldOut {
					continue
				}
				fuzzVec = append(fuzzVec, psFS.Base(fuzz[i].Derived))
				fuzzLab = append(fuzzLab, true)
			}
			ps := lab.TrainDetectorLike("perspectron", fold.Train, nil, nil)
			pf := lab.TrainDetectorLike("pfuzzer", fold.Train, fuzzVec, fuzzLab)
			ev := lab.TrainDetectorLike("evax", fold.Train, nil, nil)
			cps := ps.Evaluate(lab.DS, fold.Test)
			cpf := pf.Evaluate(lab.DS, fold.Test)
			cev := ev.Evaluate(lab.DS, fold.Test)
			return Figure19Row{
				HeldOut:     fold.HeldOut,
				ErrPerSpec:  cps.GeneralizationError(),
				ErrPFuzzer:  cpf.GeneralizationError(),
				ErrEVAX:     cev.GeneralizationError(),
				TestSamples: len(fold.Test),
			}, nil
		})
	if err != nil {
		return Figure19Result{}, err
	}
	var res Figure19Result
	var n float64
	for _, row := range rows {
		res.Rows = append(res.Rows, row)
		res.MeanPerSpec += row.ErrPerSpec
		res.MeanPFuzzer += row.ErrPFuzzer
		res.MeanEVAX += row.ErrEVAX
		n++
	}
	if n > 0 {
		res.MeanPerSpec /= n
		res.MeanPFuzzer /= n
		res.MeanEVAX /= n
	}
	return res, nil
}

// String renders the cross-validation table.
func (r Figure19Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 19: K-fold (attack-holdout) generalization error\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  holdout %-20s PerSpectron=%.3f  P.Fuzzer=%.3f  EVAX=%.3f  (%d test windows)\n",
			row.HeldOut, row.ErrPerSpec, row.ErrPFuzzer, row.ErrEVAX, row.TestSamples)
	}
	fmt.Fprintf(&b, "  mean: PerSpectron=%.3f  P.Fuzzer=%.3f  EVAX=%.3f\n",
		r.MeanPerSpec, r.MeanPFuzzer, r.MeanEVAX)
	return b.String()
}

// Figure20Row reports one depth/training-mode combination.
type Figure20Row struct {
	HiddenLayers int
	Training     string // "traditional" or "evax"
	MinAcc       float64
	MedianAcc    float64
	MaxAcc       float64
}

// Figure20Result shows EVAX training lifting deeper detectors.
type Figure20Result struct {
	Rows []Figure20Row
}

// Figure20 trains detectors of several depths with traditional and
// EVAX (GAN-augmented) data and reports per-attack-class accuracy spreads
// on a held-out split.
func Figure20(lab *Lab, depths []int) Figure20Result {
	if len(depths) == 0 {
		depths = []int{1, 16, 32}
	}
	fs := detect.EVAXBase()
	fs.SetEngineered(lab.Mined)

	trainVecs, trainLabels, _ := lab.baseVectors(fs, lab.allIdx())
	gen, genLabels := lab.GeneratedAugmentation(lab.Opts.GenPerClass)

	// Evaluation on unseen program instances; per-class accuracy plays
	// the role of the paper's per-workload accuracy distribution.
	eval := lab.EvalCorpus(5200)
	perClassAcc := func(d *detect.Detector) []float64 {
		conf := map[isa.Class]*metrics.Confusion{}
		for i := range eval {
			s := &eval[i]
			c, ok := conf[s.Class]
			if !ok {
				c = &metrics.Confusion{}
				conf[s.Class] = c
			}
			c.Add(d.Flag(s.Derived), s.Malicious)
		}
		var accs []float64
		for c := isa.ClassBenign; c < isa.NumClasses; c++ {
			if cf, ok := conf[c]; ok && cf.Total() >= 5 {
				accs = append(accs, cf.Accuracy())
			}
		}
		return accs
	}

	var res Figure20Result
	opts := detect.DefaultTrainOptions()
	opts.Epochs = 20
	for _, depth := range depths {
		for _, mode := range []string{"traditional", "evax"} {
			var d *detect.Detector
			if depth <= 1 {
				d = detect.NewPerceptron(lab.Opts.Seed+int64(depth), fs)
			} else {
				d = detect.NewDeep(lab.Opts.Seed+int64(depth), fs, depth, 24)
			}
			if mode == "traditional" {
				d.TrainVectors(trainVecs, trainLabels, opts)
			} else {
				d.TrainVectors(append(append([][]float64{}, trainVecs...), gen...),
					append(append([]bool{}, trainLabels...), genLabels...), opts)
			}
			accs := perClassAcc(d)
			min, max := metrics.MinMax(accs)
			res.Rows = append(res.Rows, Figure20Row{
				HiddenLayers: depth,
				Training:     mode,
				MinAcc:       min,
				MedianAcc:    metrics.Median(accs),
				MaxAcc:       max,
			})
		}
	}
	return res
}

// String renders the depth/training comparison.
func (r Figure20Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 20: Improving other ML models with EVAX training\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %2d-layer %-12s acc min/median/max = %.3f / %.3f / %.3f\n",
			row.HiddenLayers, row.Training, row.MinAcc, row.MedianAcc, row.MaxAcc)
	}
	return b.String()
}
