package gan

import (
	"math/rand"
	"testing"

	"evax/internal/gram"
)

// synthClasses builds two synthetic "attack types" in an 8-feature space:
// class 0 co-activates features 0&1, class 1 co-activates features 2&3.
func synthClasses(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var samples [][]float64
	var classes []int
	for i := 0; i < n; i++ {
		v := make([]float64, 8)
		a := 0.5 + 0.5*rng.Float64()
		c := i % 2
		if c == 0 {
			v[0], v[1] = a, a*0.9
		} else {
			v[2], v[3] = a, a*0.9
		}
		for j := 4; j < 8; j++ {
			v[j] = rng.Float64() * 0.1
		}
		samples = append(samples, v)
		classes = append(classes, c)
	}
	return samples, classes
}

func trainedGAN(t *testing.T) (*AMGAN, [][]float64, []int) {
	t.Helper()
	samples, classes := synthClasses(80, 3)
	cfg := DefaultConfig(8, 2)
	cfg.GenHidden = []int{24, 16}
	a := New(cfg)
	a.Train(samples, classes, 150)
	return a, samples, classes
}

func TestGenerateShapeAndRange(t *testing.T) {
	a := New(DefaultConfig(8, 2))
	g := a.Generate(0)
	if len(g) != 8 {
		t.Fatalf("generated dim = %d", len(g))
	}
	for _, v := range g {
		if v < 0 || v > 1 {
			t.Fatalf("generated value %v outside [0,1]", v)
		}
	}
	if len(a.GenerateBatch(1, 5)) != 5 {
		t.Fatal("batch size wrong")
	}
}

func TestGenerateVariesAcrossCalls(t *testing.T) {
	a := New(DefaultConfig(8, 2))
	g1, g2 := a.Generate(0), a.Generate(0)
	same := true
	for i := range g1 {
		if g1[i] != g2[i] {
			same = false
		}
	}
	if same {
		t.Fatal("noise input had no effect")
	}
}

func TestTrainingImprovesDiscrimination(t *testing.T) {
	// Mid-training (well before equilibrium), D must score real matching
	// pairs above mismatched pairs on average. Near Nash equilibrium the
	// gap legitimately collapses, so this uses a short run.
	samples, classes := synthClasses(80, 3)
	cfg := DefaultConfig(8, 2)
	cfg.GenHidden = []int{24, 16}
	a := New(cfg)
	a.Train(samples, classes, 25)
	var match, mismatch float64
	for i := range samples {
		match += a.Discriminate(samples[i], classes[i])
		mismatch += a.Discriminate(samples[i], 1-classes[i])
	}
	if match <= mismatch {
		t.Fatalf("D does not prefer matching pairs: %v vs %v", match, mismatch)
	}
}

func TestStyleLossDecreases(t *testing.T) {
	// The Figure 7 property: generated samples grow stylistically closer
	// to their class over training.
	samples, classes := synthClasses(80, 5)
	cfg := DefaultConfig(8, 2)
	cfg.GenHidden = []int{24, 16}
	a := New(cfg)
	res := a.Train(samples, classes, 40)
	if len(res.Epochs) != 40 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	early := (res.Epochs[0].StyleLoss + res.Epochs[1].StyleLoss + res.Epochs[2].StyleLoss) / 3
	late := (res.Epochs[37].StyleLoss + res.Epochs[38].StyleLoss + res.Epochs[39].StyleLoss) / 3
	if late >= early {
		t.Fatalf("style loss did not decrease: early %v, late %v", early, late)
	}
}

func TestConditioningControlsStyle(t *testing.T) {
	a, samples, classes := trainedGAN(t)
	// Split real samples by class.
	var real0, real1 [][]float64
	for i := range samples {
		if classes[i] == 0 {
			real0 = append(real0, samples[i])
		} else {
			real1 = append(real1, samples[i])
		}
	}
	gen0 := a.GenerateBatch(0, 32)
	sameStyle := gram.SeriesStyleLoss(real0, gen0, 1)
	crossStyle := gram.SeriesStyleLoss(real1, gen0, 1)
	if sameStyle >= crossStyle {
		t.Fatalf("class-0 generation not closer to class 0: same %v cross %v", sameStyle, crossStyle)
	}
}

func TestDeterministicTraining(t *testing.T) {
	run := func() float64 {
		samples, classes := synthClasses(40, 7)
		cfg := DefaultConfig(8, 2)
		cfg.GenHidden = []int{16}
		a := New(cfg)
		res := a.Train(samples, classes, 5)
		return res.Epochs[4].GLoss
	}
	if run() != run() {
		t.Fatal("training not deterministic for a fixed seed")
	}
}

func TestGeneratorAccessors(t *testing.T) {
	cfg := DefaultConfig(8, 2)
	a := New(cfg)
	if a.Generator() == nil {
		t.Fatal("nil generator")
	}
	if a.Config().FeatureDim != 8 {
		t.Fatal("config not retained")
	}
	// Asymmetry: G deep, D shallow.
	if len(a.Generator().Layers) <= len(a.D.Layers) {
		t.Fatalf("AM-GAN asymmetry violated: G %d layers, D %d",
			len(a.Generator().Layers), len(a.D.Layers))
	}
}

func TestGenerateFiltered(t *testing.T) {
	a, _, _ := trainedGAN(t)
	got := a.GenerateFiltered(0, 10, 4)
	if len(got) != 10 {
		t.Fatalf("filtered batch = %d", len(got))
	}
	// The kept samples must score at least as well as a fresh raw batch
	// on average (they were selected for discriminator realism).
	var kept, raw float64
	for _, v := range got {
		kept += a.Discriminate(v, 0)
	}
	for _, v := range a.GenerateBatch(0, 40) {
		raw += a.Discriminate(v, 0) / 4
	}
	if kept < raw-1e-9 {
		t.Fatalf("filtered mean score %v below raw %v", kept/10, raw/10)
	}
	if got := a.GenerateFiltered(0, 3, 0); len(got) != 3 {
		t.Fatalf("overgen<1 not clamped: %d", len(got))
	}
}

func TestInitialStyleLossRecorded(t *testing.T) {
	samples, classes := synthClasses(40, 9)
	cfg := DefaultConfig(8, 2)
	cfg.GenHidden = []int{16}
	a := New(cfg)
	res := a.Train(samples, classes, 3)
	if res.InitialStyleLoss <= 0 {
		t.Fatalf("initial style loss = %v", res.InitialStyleLoss)
	}
}

func TestReconstructionAnchorConditions(t *testing.T) {
	// With the anchor on, generated class-0 samples must activate class
	// 0's signature features more than class 1's.
	samples, classes := synthClasses(80, 13)
	cfg := DefaultConfig(8, 2)
	cfg.GenHidden = []int{24, 16}
	a := New(cfg)
	a.Train(samples, classes, 60)
	var own, other float64
	for _, v := range a.GenerateBatch(0, 40) {
		own += v[0] + v[1]
		other += v[2] + v[3]
	}
	if own <= other {
		t.Fatalf("conditioning failed: own-signature %v <= other %v", own, other)
	}
}
