// Package gan implements the paper's AM-GAN (Asymmetric Model GAN): a deep
// conditional generator paired with a shallow discriminator shaped like the
// hardware detector. Training follows the algorithm of the paper's Figure 4:
// the discriminator learns to accept real (sample, label) pairs and reject
// generated or mismatched pairs; the generator learns — from noise, a class
// label and the discriminator's gradient — to emit microarchitectural
// feature vectors indistinguishable from real attack samples of that class.
//
// Generated samples are counter-value vectors, not code: per the paper's
// ethics position they harden detectors without handing attackers a
// weaponizable exploit generator.
package gan

import (
	"math/rand"
	"sort"

	"evax/internal/gram"
	"evax/internal/ml"
)

// Config sizes the AM-GAN.
type Config struct {
	NoiseDim   int   // paper: the noise vector matches the 145 features
	FeatureDim int   // microarchitectural feature dimensionality
	NumClasses int   // conditioning labels (attack types + benign)
	GenHidden  []int // generator hidden layer widths (deep)
	DiscHidden []int // discriminator hidden widths (shallow/HW-like)
	LR         float64
	Momentum   float64
	// ClassGain scales the one-hot conditioning inputs so the class
	// signal is not drowned by the high-dimensional noise vector.
	ClassGain float64
	// ReconWeight adds a supervised reconstruction anchor to the
	// generator (pix2pix-style): G(z, c) is also pulled toward real
	// samples of class c, which keeps the conditional structure from
	// collapsing when the discriminator wins the adversarial game.
	ReconWeight float64
	Seed        int64
}

// DefaultConfig mirrors the paper's asymmetry: a deep generator and a
// single-layer (perceptron-like) discriminator.
func DefaultConfig(featureDim, numClasses int) Config {
	return Config{
		NoiseDim:   featureDim,
		FeatureDim: featureDim,
		NumClasses: numClasses,
		GenHidden:  []int{96, 96, 64},
		// One small hidden layer: the conditional matching task needs
		// feature-label interaction terms a purely linear model cannot
		// express; D stays shallow relative to the deep generator (the
		// AM-GAN asymmetry).
		DiscHidden:  []int{16},
		LR:          0.02,
		Momentum:    0.5,
		ClassGain:   3,
		ReconWeight: 0.5,
		Seed:        1,
	}
}

// AMGAN is the trained pair.
type AMGAN struct {
	cfg Config
	// G maps [noise | one-hot class] -> feature vector in [0,1].
	G *ml.Network
	// D maps [features | one-hot class] -> probability the pair is a
	// real, matching sample.
	D   *ml.Network
	rng *rand.Rand

	noise []float64
	gin   []float64
	din   []float64
}

// New constructs an untrained AM-GAN.
func New(cfg Config) *AMGAN {
	gSizes := append([]int{cfg.NoiseDim + cfg.NumClasses}, cfg.GenHidden...)
	gSizes = append(gSizes, cfg.FeatureDim)
	dSizes := append([]int{cfg.FeatureDim + cfg.NumClasses}, cfg.DiscHidden...)
	dSizes = append(dSizes, 1)
	return &AMGAN{
		cfg:   cfg,
		G:     ml.New(cfg.Seed, gSizes, ml.LeakyReLU, ml.Sigmoid),
		D:     ml.New(cfg.Seed+1, dSizes, ml.LeakyReLU, ml.Sigmoid),
		rng:   rand.New(rand.NewSource(cfg.Seed + 2)),
		noise: make([]float64, cfg.NoiseDim),
		gin:   make([]float64, cfg.NoiseDim+cfg.NumClasses),
		din:   make([]float64, cfg.FeatureDim+cfg.NumClasses),
	}
}

// Generator exposes the trained generator network (feature engineering
// inspects its weights).
func (a *AMGAN) Generator() *ml.Network { return a.G }

// Config returns the construction configuration.
func (a *AMGAN) Config() Config { return a.cfg }

func (a *AMGAN) sampleNoise() {
	for i := range a.noise {
		a.noise[i] = a.rng.NormFloat64() * 0.5
	}
}

func (a *AMGAN) genInput(class int) []float64 {
	copy(a.gin, a.noise)
	for c := 0; c < a.cfg.NumClasses; c++ {
		v := 0.0
		if c == class {
			v = a.classGain()
		}
		a.gin[a.cfg.NoiseDim+c] = v
	}
	return a.gin
}

func (a *AMGAN) classGain() float64 {
	if a.cfg.ClassGain > 0 {
		return a.cfg.ClassGain
	}
	return 1
}

func (a *AMGAN) discInput(features []float64, class int) []float64 {
	copy(a.din, features)
	for c := 0; c < a.cfg.NumClasses; c++ {
		v := 0.0
		if c == class {
			v = a.classGain()
		}
		a.din[a.cfg.FeatureDim+c] = v
	}
	return a.din
}

// Generate emits one feature vector conditioned on class.
func (a *AMGAN) Generate(class int) []float64 {
	a.sampleNoise()
	out := a.G.Forward(a.genInput(class))
	return append([]float64(nil), out...)
}

// GenerateBatch emits n samples of a class. The rows share one contiguous
// backing array (cap-clamped views, so appending through a row copies).
func (a *AMGAN) GenerateBatch(class, n int) [][]float64 {
	dim := a.G.OutputSize()
	backing := make([]float64, n*dim)
	out := make([][]float64, n)
	for i := range out {
		a.sampleNoise()
		row := backing[i*dim : (i+1)*dim : (i+1)*dim]
		copy(row, a.G.Forward(a.genInput(class)))
		out[i] = row
	}
	return out
}

// GenerateFiltered emits n samples of a class after quality gating:
// overgen*n candidates are drawn and the n the discriminator scores most
// realistic for the class are kept — the paper's practice of verifying
// sample quality before collecting training data.
func (a *AMGAN) GenerateFiltered(class, n, overgen int) [][]float64 {
	if overgen < 1 {
		overgen = 1
	}
	type scored struct {
		v []float64
		s float64
	}
	cand := make([]scored, 0, n*overgen)
	for i := 0; i < n*overgen; i++ {
		v := a.Generate(class)
		cand = append(cand, scored{v, a.Discriminate(v, class)})
	}
	out := make([][]float64, 0, n)
	for k := 0; k < n && k < len(cand); k++ {
		best := k
		for m := k + 1; m < len(cand); m++ {
			if cand[m].s > cand[best].s {
				best = m
			}
		}
		cand[k], cand[best] = cand[best], cand[k]
		out = append(out, cand[k].v)
	}
	return out
}

// Discriminate scores a (features, class) pair: ~1 for real-and-matching.
func (a *AMGAN) Discriminate(features []float64, class int) float64 {
	return a.D.Forward(a.discInput(features, class))[0]
}

// TrainStep runs one iteration of the Figure 4 algorithm on a real sample
// with its class label. It returns the discriminator and generator losses.
func (a *AMGAN) TrainStep(real []float64, class int) (dLoss, gLoss float64) {
	grad := make([]float64, 1)

	// Discriminator on the real, matching pair (target 1).
	pred := a.D.Forward(a.discInput(real, class))
	dLoss += ml.BCE(pred, []float64{1}, grad)
	a.D.Backward(grad)

	// Discriminator on a mismatched real pair (target 0) — the CGAN
	// label-matching term.
	if a.cfg.NumClasses > 1 {
		wrong := (class + 1 + a.rng.Intn(a.cfg.NumClasses-1)) % a.cfg.NumClasses
		pred = a.D.Forward(a.discInput(real, wrong))
		dLoss += ml.BCE(pred, []float64{0}, grad)
		a.D.Backward(grad)
	}

	// Discriminator on a generated pair (target 0).
	a.sampleNoise()
	fake := append([]float64(nil), a.G.Forward(a.genInput(class))...)
	pred = a.D.Forward(a.discInput(fake, class))
	dLoss += ml.BCE(pred, []float64{0}, grad)
	a.D.Backward(grad)
	a.D.Step(a.cfg.LR, a.cfg.Momentum, 3)

	// Generator: make D call the fake real (target 1); the gradient
	// flows through D into G without updating D.
	a.sampleNoise()
	gin := a.genInput(class)
	fake = a.G.Forward(gin)
	pred = a.D.Forward(a.discInput(append([]float64(nil), fake...), class))
	gLoss = ml.BCE(pred, []float64{1}, grad)
	dIn := a.D.Backward(grad)
	a.D.ClearGrads() // D is frozen during the generator update
	a.G.Backward(dIn[:a.cfg.FeatureDim])
	a.G.Step(a.cfg.LR, a.cfg.Momentum, 1)

	// Conditional reconstruction anchor. Cross-entropy (not MSE) against
	// the sigmoid output keeps gradients alive at the sparse extremes of
	// the feature space.
	if a.cfg.ReconWeight > 0 {
		a.sampleNoise()
		out := a.G.Forward(a.genInput(class))
		rgrad := make([]float64, len(out))
		ml.BCE(out, real, rgrad)
		for i := range rgrad {
			rgrad[i] *= a.cfg.ReconWeight
		}
		a.G.Backward(rgrad)
		a.G.Step(a.cfg.LR, a.cfg.Momentum, 1)
	}
	return dLoss, gLoss
}

// TrainResult summarizes a training run.
type TrainResult struct {
	// InitialStyleLoss is L_GM before any training (the untrained
	// generator's distance from the real per-class styles).
	InitialStyleLoss float64
	Epochs           []EpochStats
}

// EpochStats records per-epoch losses and the style-loss quality metric.
type EpochStats struct {
	Epoch     int
	DLoss     float64
	GLoss     float64
	StyleLoss float64 // L_GM between real and generated per-class windows
}

// Train runs the adversarial game for epochs passes over the samples,
// computing the Gram-matrix style loss each epoch (the paper's training
// quality monitor, Figure 7). classes[i] labels samples[i].
func (a *AMGAN) Train(samples [][]float64, classes []int, epochs int) TrainResult {
	var res TrainResult
	res.InitialStyleLoss = a.StyleLoss(samples, classes, 24)
	order := a.rng.Perm(len(samples))
	for e := 0; e < epochs; e++ {
		var dSum, gSum float64
		for _, i := range order {
			d, g := a.TrainStep(samples[i], classes[i])
			dSum += d
			gSum += g
		}
		res.Epochs = append(res.Epochs, EpochStats{
			Epoch:     e,
			DLoss:     dSum / float64(len(order)),
			GLoss:     gSum / float64(len(order)),
			StyleLoss: a.StyleLoss(samples, classes, 24),
		})
	}
	return res
}

// StyleLoss computes the mean per-class Gram style loss L_GM between real
// windows and freshly generated windows of n samples each — low values mean
// generated samples co-activate features the way real attacks of that class
// do.
func (a *AMGAN) StyleLoss(samples [][]float64, classes []int, n int) float64 {
	byClass := map[int][][]float64{}
	for i, c := range classes {
		byClass[c] = append(byClass[c], samples[i])
	}
	// Iterate classes in sorted order: the loss sum and the generator's
	// RNG draws must not depend on map iteration order.
	classOrder := make([]int, 0, len(byClass))
	for c := range byClass {
		classOrder = append(classOrder, c)
	}
	sort.Ints(classOrder)
	var total float64
	var classesSeen int
	for _, c := range classOrder {
		real := byClass[c]
		if len(real) < 2 {
			continue
		}
		if len(real) > n {
			real = real[:n]
		}
		gen := a.GenerateBatch(c, len(real))
		total += gram.SeriesStyleLoss(real, gen, 1)
		classesSeen++
	}
	if classesSeen == 0 {
		return 0
	}
	return total / float64(classesSeen)
}
