package sim

// stridePrefetcher is a classic PC-indexed stride prefetcher (disabled by
// default; Config.Prefetcher enables it). Each load PC tracks its last
// address and stride; two consecutive accesses with the same stride arm the
// entry, after which the prefetcher issues Degree line prefetches ahead of
// the demand stream into the L1D.
//
// Prefetching matters to this reproduction for two reasons: it is a real
// component of the simulated core whose counters
// (dcache.Prefetches/PrefetchFills) feed the detector, and it perturbs the
// cache-timing channels the attacks rely on — the ablation benchmark
// measures both.
type stridePrefetcher struct {
	entries []pfEntry
	mask    uint64
	degree  int

	// Issued counts prefetches sent; Useful is maintained by the cache's
	// PrefetchFills (fills that were not already present).
	Issued uint64
}

type pfEntry struct {
	pc     uint64
	last   uint64
	stride int64
	armed  bool
}

// PrefetchConfig sizes the stride prefetcher.
type PrefetchConfig struct {
	// Enabled turns the prefetcher on.
	Enabled bool
	// TableSize is the number of PC-indexed tracking entries (power of 2).
	TableSize int
	// Degree is how many lines ahead each trigger prefetches.
	Degree int
}

// DefaultPrefetchConfig returns a 64-entry, degree-2 stride prefetcher
// (disabled; Table II's core does not state one and the experiment
// calibration assumes none).
func DefaultPrefetchConfig() PrefetchConfig {
	return PrefetchConfig{Enabled: false, TableSize: 64, Degree: 2}
}

func newStridePrefetcher(cfg PrefetchConfig) *stridePrefetcher {
	size := cfg.TableSize
	if size&(size-1) != 0 || size == 0 {
		size = 64
	}
	deg := cfg.Degree
	if deg < 1 {
		deg = 1
	}
	return &stridePrefetcher{
		entries: make([]pfEntry, size),
		mask:    uint64(size - 1),
		degree:  deg,
	}
}

// observe records a demand load at pc touching addr and returns the
// addresses to prefetch (nil when the entry is not armed).
func (p *stridePrefetcher) observe(pc, addr uint64) []uint64 {
	e := &p.entries[pc&p.mask]
	if e.pc != pc {
		*e = pfEntry{pc: pc, last: addr}
		return nil
	}
	stride := int64(addr) - int64(e.last)
	if stride == 0 {
		return nil
	}
	trigger := stride == e.stride // second sighting of the same stride
	e.armed = trigger
	e.stride = stride
	e.last = addr
	if !trigger {
		return nil
	}
	out := make([]uint64, 0, p.degree)
	next := int64(addr)
	for i := 0; i < p.degree; i++ {
		next += stride
		if next <= 0 {
			break
		}
		out = append(out, uint64(next))
	}
	p.Issued += uint64(len(out))
	return out
}
