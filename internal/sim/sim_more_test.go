package sim

import (
	"math/rand"
	"testing"

	"evax/internal/isa"
)

// lviGadget builds an LVI-style injection: an aliasing store poisons a
// victim assist-load whose transient value indexes the probe array.
func lviGadget() (*isa.Program, uint64) {
	const (
		probeBase = 0x8_0000
		stride    = 4096
		poison    = 5
	)
	victim := uint64(0x7008)
	alias := victim + 0x3000
	b := isa.NewBuilder("lvi-gadget", isa.ClassLVI)
	b.InitMem(victim, 1)
	b.InitReg(isa.R1, victim)
	b.InitReg(isa.R2, alias)
	b.InitReg(isa.R20, probeBase)
	b.InitReg(isa.R21, 0x5_0000)
	b.CLFlush(isa.R21, isa.R0, 0, 0)
	b.Li(isa.R3, poison)
	b.Store(isa.R3, isa.R2, isa.R0, 0, 0)
	b.Load(isa.R9, isa.R21, isa.R0, 0, 0)      // delay retirement
	b.LoadAssist(isa.R4, isa.R1, isa.R0, 0, 0) // injected
	b.Load(isa.R5, isa.R20, isa.R4, stride, 0) // leak
	b.Nop()
	return b.MustBuild(), probeBase + poison*stride
}

func TestFenceBeforeLoadStopsLVI(t *testing.T) {
	// The paper's Futuristic model: fencing every load is the only
	// mitigation that covers LVI (at 900% overhead on real hardware).
	p, leakAddr := lviGadget()
	m := New(DefaultConfig(), p)
	m.Run(1_000_000)
	if !m.L1D().Present(leakAddr) {
		t.Fatal("LVI gadget inert without defenses")
	}

	p2, leakAddr2 := lviGadget()
	m2 := New(DefaultConfig(), p2)
	m2.SetPolicy(PolicyFenceBeforeLoad)
	m2.Run(1_000_000)
	if m2.L1D().Present(leakAddr2) {
		t.Fatal("fence-before-load failed to stop LVI")
	}
	// Architectural result unchanged: the victim's true value.
	if m2.ArchReg(isa.R4) != 1 {
		t.Fatalf("assist load committed %d, want 1", m2.ArchReg(isa.R4))
	}
}

func TestInvisiSpecFuturisticStopsLVI(t *testing.T) {
	p, leakAddr := lviGadget()
	m := New(DefaultConfig(), p)
	m.SetPolicy(PolicyInvisiSpecFuturistic)
	m.Run(1_000_000)
	if m.L1D().Present(leakAddr) {
		t.Fatal("futuristic InvisiSpec failed to hide the LVI leak")
	}
}

func TestSpectreModelDefensesDoNotStopLVI(t *testing.T) {
	// The Spectre-model mitigations must NOT stop LVI — the paper's
	// motivation for the Futuristic tier.
	for _, pol := range []Policy{PolicyFenceAfterBranch, PolicyInvisiSpecSpectre} {
		p, leakAddr := lviGadget()
		m := New(DefaultConfig(), p)
		m.SetPolicy(pol)
		m.Run(1_000_000)
		if !m.L1D().Present(leakAddr) {
			t.Fatalf("%v unexpectedly stopped LVI (it should not cover fault/assist channels)", pol)
		}
	}
}

func TestLQFullStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LQEntries = 2
	b := isa.NewBuilder("lqfull", isa.ClassBenign)
	b.Li(isa.R1, 0x9000)
	b.CLFlush(isa.R1, isa.R0, 0, 0)
	for i := 0; i < 8; i++ {
		b.Load(isa.Reg(2+i), isa.R1, isa.R0, 0, int64(i*4096)) // slow loads
	}
	p := b.MustBuild()
	m := New(cfg, p)
	m.Run(10000)
	if !m.Done() {
		t.Fatal("did not finish")
	}
	if m.Ctr(CtrLSQBlockedLoads) == 0 {
		t.Fatal("tiny LQ never blocked dispatch")
	}
}

func TestPhysRegExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PhysIntRegs = isa.NumRegs + 4 // only 4 rename registers
	b := isa.NewBuilder("regfull", isa.ClassBenign)
	b.Li(isa.R1, 0x9000)
	b.CLFlush(isa.R1, isa.R0, 0, 0)
	b.Load(isa.R2, isa.R1, isa.R0, 0, 0) // slow op holds its dest
	for i := 0; i < 30; i++ {
		b.Addi(isa.Reg(3+(i%8)), isa.R2, int64(i)) // dependent dests pile up
	}
	p := b.MustBuild()
	m := New(cfg, p)
	m.Run(10000)
	if !m.Done() {
		t.Fatal("did not finish")
	}
	if m.Ctr(CtrRenameFullRegStalls) == 0 {
		t.Fatal("rename never stalled on free physical registers")
	}
}

func TestIQFullStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IQEntries = 4
	b := isa.NewBuilder("iqfull", isa.ClassBenign)
	b.Li(isa.R1, 0x9000)
	b.CLFlush(isa.R1, isa.R0, 0, 0)
	b.Load(isa.R2, isa.R1, isa.R0, 0, 0)
	for i := 0; i < 40; i++ {
		b.Add(isa.R3, isa.R3, isa.R2) // all wait on the slow load
	}
	p := b.MustBuild()
	m := New(cfg, p)
	m.Run(10000)
	if !m.Done() {
		t.Fatal("did not finish")
	}
	if m.Ctr(CtrIQFullStalls) == 0 {
		t.Fatal("tiny IQ never filled")
	}
}

func TestROBFullStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBEntries = 8
	b := isa.NewBuilder("robfull", isa.ClassBenign)
	b.Li(isa.R1, 0x9000)
	b.CLFlush(isa.R1, isa.R0, 0, 0)
	b.Load(isa.R2, isa.R1, isa.R0, 0, 0) // blocks the head
	for i := 0; i < 40; i++ {
		b.Addi(isa.R3, isa.R3, 1)
	}
	p := b.MustBuild()
	m := New(cfg, p)
	m.Run(10000)
	if m.Ctr(CtrROBFullStalls) == 0 {
		t.Fatal("tiny ROB never filled")
	}
}

func TestROBBoundsTransientWindow(t *testing.T) {
	// The paper's argument: the transient window is bounded by the ROB.
	// A Spectre gadget on a small-ROB machine leaks measurably less.
	leaksFor := func(rob int) uint64 {
		cfg := DefaultConfig()
		cfg.ROBEntries = rob
		p, _ := spectreGadget()
		m := New(cfg, p)
		m.Run(1_000_000)
		return m.C.LeakedTransientLoads
	}
	small, large := leaksFor(16), leaksFor(192)
	if small >= large {
		t.Fatalf("ROB 16 leaked %d, ROB 192 leaked %d: window not ROB-bounded", small, large)
	}
}

func TestRunCyclesBudget(t *testing.T) {
	p, _ := spectreGadget()
	m := New(DefaultConfig(), p)
	m.RunCycles(100)
	if m.Cycles() > 120 {
		t.Fatalf("RunCycles(100) advanced %d cycles", m.Cycles())
	}
}

func TestSamplerIntegration(t *testing.T) {
	// Machine implements hpc.Source end to end: windows carry plausible
	// instruction and cycle counts.
	p, _ := spectreGadget()
	m := New(DefaultConfig(), p)
	cat := CounterCatalog()
	buf := make([]uint64, cat.Len())
	m.ReadCounters(buf)
	m.Run(5_000)
	m.ReadCounters(buf)
	if buf[cat.MustIndex("commit.CommittedInsts")] != m.Instructions() {
		t.Fatal("committed-instruction counter disagrees with Instructions()")
	}
}

// TestRandomCallProgramsMatchInterp extends the differential test with
// call/ret-heavy random programs (RAS speculation and squash-recovery of
// the call stack are the riskiest recovery paths).
func TestRandomCallProgramsMatchInterp(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		b := isa.NewBuilder("randcall", isa.ClassBenign)
		for r := isa.Reg(1); r <= 6; r++ {
			b.InitReg(r, uint64(rng.Intn(50)))
		}
		b.Li(isa.R9, 0x4000)
		b.Li(isa.R10, 0)
		b.Li(isa.R11, int64(2+rng.Intn(4)))
		b.Label("loop")
		b.Call("fa")
		b.Call("fb")
		b.Addi(isa.R10, isa.R10, 1)
		b.Br(isa.CondNE, isa.R10, isa.R11, "loop")
		b.Jmp("end")

		b.Label("fa")
		for i := 0; i < 4; i++ {
			b.Add(isa.Reg(1+rng.Intn(6)), isa.Reg(1+rng.Intn(6)), isa.Reg(1+rng.Intn(6)))
		}
		// Data-dependent early return.
		b.Br(isa.CondLT, isa.Reg(1+rng.Intn(6)), isa.Reg(1+rng.Intn(6)), "faout")
		b.Call("fb")
		b.Label("faout")
		b.Ret()

		b.Label("fb")
		b.Store(isa.Reg(1+rng.Intn(6)), isa.R9, isa.R0, 0, int64(rng.Intn(4)*8))
		b.Load(isa.Reg(1+rng.Intn(6)), isa.R9, isa.R0, 0, int64(rng.Intn(4)*8))
		b.Ret()

		b.Label("end")
		b.Nop()
		p := b.MustBuild()
		m, it := runBoth(t, p, 100000)
		checkArchMatch(t, m, it)
	}
}
