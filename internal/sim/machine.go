package sim

import (
	"container/heap"
	"fmt"

	"evax/internal/branch"
	"evax/internal/cache"
	"evax/internal/dram"
	"evax/internal/isa"
	"evax/internal/tlb"
)

// robEntry is one in-flight micro-op.
type robEntry struct {
	seq     uint64
	instIdx int
	kind    isa.Kind
	phase   isa.Phase
	hasDest bool

	execStart uint64 // cycle issue/execution begins
	doneAt    uint64 // cycle the result is available

	wrongPath bool // dispatched under a known-wrong path

	// Control-flow resolution.
	isCtrl     bool
	mispredict bool
	actualNext int
	predDir    branch.Direction
	hasPredDir bool
	btbPred    int
	btbHad     bool
	rasUsed    bool
	rasCorrect bool

	// Memory.
	isLoad   bool
	isStore  bool
	ea       uint64
	specLoad bool // routed through the InvisiSpec buffer
	// didCacheAccess records that the op really touched the cache
	// hierarchy; a squashed load with this set is a transient leak
	// candidate (the security ground truth the experiments measure).
	didCacheAccess bool

	// Commit-time replay triggers.
	fault        bool   // kernel permission fault (Meltdown window)
	assistReplay bool   // microcode assist / LVI-style injection replay
	stlViolation bool   // load bypassed an unresolved older store
	squashAtEst  uint64 // estimated commit/squash cycle for replay loads

	// destValue is the architectural result recorded at dispatch. For
	// replay loads it is the correct post-replay value; the transient
	// value lives only in the speculative register file.
	destValue uint64
	dest      isa.Reg

	ckpt *checkpoint
}

// checkpoint captures speculative register/control state for squash
// recovery. SQ/LQ occupancy is unwound by ROB truncation, not here. For
// control ops the snapshot reflects state just *after* the op's own
// functional effects; for replay loads, just *before* the transient
// destination write.
type checkpoint struct {
	specRegs  [isa.NumRegs]uint64
	regReady  [isa.NumRegs]uint64
	callStack []int
	ras       branch.RASSnapshot
}

// redirect records the pending squash for a right-path mispredicted control
// op (at most one exists: everything fetched after it is wrong-path).
type redirect struct {
	seq        uint64
	doneAt     uint64 // resolution cycle, when the squash fires
	actualNext int
	ckpt       *checkpoint
}

// sqEntry is an in-flight store. Address and data readiness are tracked
// separately: a load may forward from a store whose address is known even if
// the data arrives later, but a store with an unresolved address is invisible
// to younger loads — the Spectre-STL bypass condition.
type sqEntry struct {
	seq    uint64
	addr   uint64 // word-aligned
	value  uint64
	addrAt uint64 // address resolution cycle
	dataAt uint64 // data ready cycle
}

// uint64Heap is a min-heap of cycle numbers (issue-queue drain tracking).
type uint64Heap []uint64

func (h uint64Heap) Len() int            { return len(h) }
func (h uint64Heap) Less(i, j int) bool  { return h[i] < h[j] }
func (h uint64Heap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *uint64Heap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *uint64Heap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Counters holds the machine-level bookkeeping that is NOT part of the HPC
// catalog: defense telemetry and security ground truth. Every
// catalog-exposed event lives in the flat Machine.ctr array, addressed by
// CtrID (see counters.go).
type Counters struct {
	MemCorruptions   uint64 // Rowhammer bit flips applied to memory
	DefenseSwitches  uint64
	DefenseActiveCyc uint64

	// LeakedTransientLoads counts squashed loads that really modified
	// cache state — the "leakage occurred" ground truth for the security
	// experiments. It is NOT exposed to the detector's feature catalog.
	LeakedTransientLoads uint64
}

// Machine is one simulated core running one program.
type Machine struct {
	cfg  Config
	prog *isa.Program

	bp      *branch.Predictor
	l1i     *cache.Cache
	l1d     *cache.Cache
	l2      *cache.Cache
	dtlb    *tlb.TLB
	itlb    *tlb.TLB
	mem     *dram.DRAM
	specBuf *cache.SpecBuffer
	pf      *stridePrefetcher

	// Architectural state.
	archRegs [isa.NumRegs]uint64
	memory   map[uint64]uint64

	// Speculative state along the fetch path.
	specRegs  [isa.NumRegs]uint64
	regReady  [isa.NumRegs]uint64
	callStack []int

	rob     []robEntry
	robHead int
	seq     uint64

	sq            []sqEntry
	lqCount       int
	inFlightDests int
	iqHeap        uint64Heap

	fetchIdx      int
	fetchReadyAt  uint64
	lastFetchLine uint64
	quiescing     bool

	// pendingRedirect is set while a right-path mispredicted control op
	// awaits resolution (at most one can exist).
	pendingRedirect *redirect

	// inFlightCtrl counts dispatched-but-uncommitted control ops; the
	// InvisiSpec Spectre model treats loads issued under any of them as
	// unsafe (their visibility point is the last older branch's commit).
	inFlightCtrl int

	// pendingReplays counts in-flight loads that will squash at commit
	// (faults, assists, memory-order violations); replayGate is the
	// estimated squash cycle of the oldest such load — micro-ops whose
	// execution would begin at or after it never actually execute.
	pendingReplays int
	replayGate     uint64

	// Serialization barriers (cycle numbers younger ops must wait for).
	serializeBarrier uint64 // LFence/serialize: all younger ops
	memBarrier       uint64 // MFence: younger memory ops
	maxDoneAll       uint64 // running max doneAt of all dispatched ops
	maxDoneMem       uint64 // running max doneAt of memory ops
	maxDoneCtrl      uint64 // running max doneAt of control ops
	branchFence      uint64 // fence-after-branch barrier (LFENCE semantics)

	// Execution unit free cycles.
	aluFree   []uint64
	multFree  []uint64
	divFree   []uint64
	fpFree    []uint64
	loadFree  []uint64
	storeFree []uint64
	rngFree   uint64

	cycle            uint64
	committed        uint64
	commitStallUntil uint64 // InvisiSpec exposure/validation backpressure
	policy           Policy

	flipsApplied int

	// Phase histogram, incremented at dispatch (leaking micro-ops often
	// never commit, so dispatch-time attribution is what the detector's
	// ground truth needs).
	phaseDispatched [6]uint64

	// ctr is the flat catalog-counter array, indexed by CtrID. The
	// pipeline increments machine-level slots directly; component-backed
	// slots are folded in by syncCounters through links (resolved once in
	// New). ReadCounters is then a sync plus one copy.
	ctr   [NumCounters]uint64
	links []ctrLink

	C Counters

	rng uint64 // architectural RDRAND state (matches isa.Interp)

	done bool
}

// New creates a machine for prog.
func New(cfg Config, prog *isa.Program) *Machine {
	m := &Machine{
		cfg:    cfg,
		prog:   prog,
		bp:     branch.New(cfg.Branch),
		memory: make(map[uint64]uint64, len(prog.InitMem)),
	}
	m.mem = dram.New(cfg.DRAM)
	m.l2 = cache.New(cfg.L2, m.mem)
	m.l1d = cache.New(cfg.L1D, m.l2)
	m.l1i = cache.New(cfg.L1I, m.l2)
	m.dtlb = tlb.New(cfg.DTLB)
	m.itlb = tlb.New(cfg.ITLB)
	m.specBuf = cache.NewSpecBuffer(m.l1d, cfg.SpecBufferEntries)
	if cfg.Prefetcher.Enabled {
		m.pf = newStridePrefetcher(cfg.Prefetcher)
	}

	for r, v := range prog.InitRegs {
		m.archRegs[r] = v
		m.specRegs[r] = v
	}
	for a, v := range prog.InitMem {
		m.memory[a&^7] = v
	}
	m.aluFree = make([]uint64, cfg.IntALUs)
	m.multFree = make([]uint64, cfg.IntMults)
	m.divFree = make([]uint64, cfg.IntDivs)
	m.fpFree = make([]uint64, cfg.FPUnits)
	m.loadFree = make([]uint64, cfg.LoadPorts)
	m.storeFree = make([]uint64, cfg.StorePort)
	m.rob = make([]robEntry, 0, cfg.ROBEntries)
	heap.Init(&m.iqHeap)
	m.links = m.counterLinks()
	return m
}

// Program returns the running program.
func (m *Machine) Program() *isa.Program { return m.prog }

// Cycles returns the elapsed cycle count.
func (m *Machine) Cycles() uint64 { return m.cycle }

// Instructions returns committed instructions.
func (m *Machine) Instructions() uint64 { return m.committed }

// Done reports whether the program has run to completion.
func (m *Machine) Done() bool { return m.done }

// IPC returns committed instructions per cycle so far.
func (m *Machine) IPC() float64 {
	if m.cycle == 0 {
		return 0
	}
	return float64(m.committed) / float64(m.cycle)
}

// Policy returns the active defense policy.
func (m *Machine) Policy() Policy { return m.policy }

// SetPolicy switches the defense policy (the adaptive controller's lever).
func (m *Machine) SetPolicy(p Policy) {
	if p != m.policy {
		m.C.DefenseSwitches++
	}
	m.policy = p
}

// ArchReg reads an architectural register (committed state).
func (m *Machine) ArchReg(r isa.Reg) uint64 {
	if r == isa.R0 {
		return 0
	}
	return m.archRegs[r]
}

// MemWord reads committed memory.
func (m *Machine) MemWord(addr uint64) uint64 { return m.memory[addr&^7] }

// L1D exposes the data cache (tests and attack verification).
func (m *Machine) L1D() *cache.Cache { return m.l1d }

// L2 exposes the shared cache.
func (m *Machine) L2() *cache.Cache { return m.l2 }

// DRAM exposes the memory model.
func (m *Machine) DRAM() *dram.DRAM { return m.mem }

// Predictor exposes the branch predictor.
func (m *Machine) Predictor() *branch.Predictor { return m.bp }

// PrefetchesIssued reports stride-prefetcher activity (0 when disabled).
func (m *Machine) PrefetchesIssued() uint64 {
	if m.pf == nil {
		return 0
	}
	return m.pf.Issued
}

// SpecBufLen reports InvisiSpec buffer occupancy.
func (m *Machine) SpecBufLen() int { return m.specBuf.Len() }

// ROBOccupancy reports in-flight micro-ops.
func (m *Machine) ROBOccupancy() int { return len(m.rob) - m.robHead }

// PhaseDispatched returns the cumulative dispatch counts per attack phase.
func (m *Machine) PhaseDispatched() [6]uint64 { return m.phaseDispatched }

func (m *Machine) specRead(r isa.Reg) uint64 {
	if r == isa.R0 {
		return 0
	}
	return m.specRegs[r]
}

func (m *Machine) specWrite(r isa.Reg, v uint64) {
	if r != isa.R0 {
		m.specRegs[r] = v
	}
}

// memRead returns the functional value a load observes: the newest older
// store in the SQ for the word, else committed memory.
func (m *Machine) memRead(addr uint64) uint64 {
	w := addr &^ 7
	for i := len(m.sq) - 1; i >= 0; i-- {
		if m.sq[i].addr == w {
			return m.sq[i].value
		}
	}
	return m.memory[w]
}

func (m *Machine) takeCheckpoint() *checkpoint {
	return &checkpoint{
		specRegs:  m.specRegs,
		regReady:  m.regReady,
		callStack: append([]int(nil), m.callStack...),
		ras:       m.bp.SnapshotRAS(),
	}
}

func (m *Machine) restoreCheckpoint(ck *checkpoint) {
	m.specRegs = ck.specRegs
	m.regReady = ck.regReady
	m.callStack = append(m.callStack[:0], ck.callStack...)
	m.bp.RestoreRAS(ck.ras)
}

// applyFlips propagates Rowhammer bit flips from the DRAM model into
// functional memory (the paper's dedicated memory-corruption module).
func (m *Machine) applyFlips() {
	flips := m.mem.Flips()
	for ; m.flipsApplied < len(flips); m.flipsApplied++ {
		f := flips[m.flipsApplied]
		rowBytes := uint64(m.mem.RowBytes())
		banks := uint64(m.mem.Banks())
		base := uint64(f.Row) * rowBytes * banks
		addr := (base + uint64(f.Bit/8)) &^ 7
		// Align the address into the right bank by stepping lines.
		for b, _ := m.mem.BankRow(addr); b != f.Bank; b, _ = m.mem.BankRow(addr) {
			addr += 64
		}
		m.memory[addr] ^= 1 << (f.Bit % 64)
		m.C.MemCorruptions++
	}
}

// String summarizes machine state (debugging aid).
func (m *Machine) String() string {
	return fmt.Sprintf("machine{%s cycle=%d committed=%d rob=%d policy=%s}",
		m.prog.Name, m.cycle, m.committed, m.ROBOccupancy(), m.policy)
}
