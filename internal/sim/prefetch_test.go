package sim

import (
	"math/rand"
	"testing"

	"evax/internal/isa"
)

func pfConfig() Config {
	cfg := DefaultConfig()
	cfg.Prefetcher = PrefetchConfig{Enabled: true, TableSize: 64, Degree: 2}
	return cfg
}

// streamProg walks a long array with unit-line stride — the pattern a
// stride prefetcher must capture.
func streamProg() *isa.Program {
	b := isa.NewBuilder("pfstream", isa.ClassBenign)
	b.Li(isa.R1, 0)
	b.Li(isa.R2, 2000)
	b.Li(isa.R3, 0x40_0000)
	b.Label("top")
	b.Load(isa.R4, isa.R3, isa.R1, 64, 0)
	b.Add(isa.R5, isa.R5, isa.R4)
	b.Addi(isa.R1, isa.R1, 1)
	b.Br(isa.CondNE, isa.R1, isa.R2, "top")
	return b.MustBuild()
}

func TestPrefetcherLearnsStride(t *testing.T) {
	m := New(pfConfig(), streamProg())
	m.Run(10_000_000)
	if !m.Done() {
		t.Fatal("did not finish")
	}
	if m.PrefetchesIssued() < 1000 {
		t.Fatalf("prefetches issued = %d on a 2000-line stream", m.PrefetchesIssued())
	}
	if m.L1D().Stats.PrefetchFills == 0 {
		t.Fatal("no prefetch fills")
	}
}

func TestPrefetcherSpeedsUpStreaming(t *testing.T) {
	base := New(DefaultConfig(), streamProg())
	base.Run(10_000_000)
	pf := New(pfConfig(), streamProg())
	pf.Run(10_000_000)
	if base.Instructions() != pf.Instructions() {
		t.Fatal("instruction counts differ")
	}
	if pf.Cycles() >= base.Cycles() {
		t.Fatalf("prefetcher did not help streaming: %d vs %d cycles",
			pf.Cycles(), base.Cycles())
	}
}

func TestPrefetcherDisabledByDefault(t *testing.T) {
	m := New(DefaultConfig(), streamProg())
	m.Run(10_000_000)
	if m.PrefetchesIssued() != 0 {
		t.Fatal("default config issued prefetches")
	}
}

func TestPrefetcherDoesNotChangeArchitecture(t *testing.T) {
	// Timing-only component: committed state must match the interpreter.
	p := streamProg()
	m := New(pfConfig(), p)
	m.Run(10_000_000)
	it := isa.NewInterp(p)
	if _, err := it.Run(p, 10_000_000); err != nil {
		t.Fatal(err)
	}
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if m.ArchReg(r) != it.Regs[r] {
			t.Fatalf("r%d: machine %d, interp %d", r, m.ArchReg(r), it.Regs[r])
		}
	}
}

func TestPrefetcherIgnoresIrregularPattern(t *testing.T) {
	// A pointer chase has no stable stride: the prefetcher must stay
	// mostly quiet rather than polluting the cache.
	b := isa.NewBuilder("pfchase", isa.ClassBenign)
	const nodes = 256
	perm := rand.New(rand.NewSource(3)).Perm(nodes)
	for i := 0; i < nodes; i++ {
		b.InitMem(0x50_0000+uint64(perm[i])*64, uint64(perm[(i+1)%nodes]))
	}
	b.InitReg(isa.R1, 0x50_0000)
	b.InitReg(isa.R2, uint64(perm[0]))
	b.Li(isa.R3, 0)
	b.Li(isa.R4, 1000)
	b.Label("walk")
	b.Load(isa.R2, isa.R1, isa.R2, 64, 0)
	b.Addi(isa.R3, isa.R3, 1)
	b.Br(isa.CondNE, isa.R3, isa.R4, "walk")
	p := b.MustBuild()
	m := New(pfConfig(), p)
	m.Run(10_000_000)
	if !m.Done() {
		t.Fatal("did not finish")
	}
	// Far fewer prefetches than loads.
	if m.PrefetchesIssued() > m.Ctr(CtrCommitLoads)/2 {
		t.Fatalf("prefetcher issued %d on %d irregular loads",
			m.PrefetchesIssued(), m.Ctr(CtrCommitLoads))
	}
}

func TestStridePrefetcherUnit(t *testing.T) {
	pf := newStridePrefetcher(PrefetchConfig{Enabled: true, TableSize: 8, Degree: 2})
	pc := uint64(0x400100)
	if got := pf.observe(pc, 1000); got != nil {
		t.Fatal("first access triggered")
	}
	if got := pf.observe(pc, 1064); got != nil {
		t.Fatal("stride not yet confirmed")
	}
	got := pf.observe(pc, 1128)
	if len(got) != 2 || got[0] != 1192 || got[1] != 1256 {
		t.Fatalf("prefetches = %v, want [1192 1256]", got)
	}
	// Stride change disarms.
	if got := pf.observe(pc, 1129); got != nil {
		t.Fatal("stride change still triggered")
	}
	// Negative strides work too.
	pc2 := uint64(0x400200)
	pf.observe(pc2, 5000)
	pf.observe(pc2, 4936)
	down := pf.observe(pc2, 4872)
	if len(down) != 2 || down[0] != 4808 {
		t.Fatalf("negative-stride prefetches = %v", down)
	}
}

func TestStridePrefetcherBadConfigDefaults(t *testing.T) {
	pf := newStridePrefetcher(PrefetchConfig{Enabled: true, TableSize: 7, Degree: 0})
	if len(pf.entries) != 64 || pf.degree != 1 {
		t.Fatalf("bad config not defaulted: %d entries, degree %d", len(pf.entries), pf.degree)
	}
}
