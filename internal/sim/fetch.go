package sim

import (
	"container/heap"

	"evax/internal/isa"
)

// fetchStage fetches, decodes, renames and dispatches up to FetchWidth
// micro-ops along the predicted path, executing them functionally and
// computing their timing.
func (m *Machine) fetchStage() bool {
	if m.quiescing {
		m.ctr[CtrFetchQuiesceCycles]++
		m.ctr[CtrFetchPendingQuiesceStallCycles]++
		if m.ROBOccupancy() == 0 {
			m.quiescing = false
			m.fetchReadyAt = m.cycle + 1
		}
		return false
	}
	if m.cycle < m.fetchReadyAt {
		m.ctr[CtrFetchStallCycles]++
		return false
	}
	progress := false
	m.ctr[CtrFetchCycles]++
	for slot := 0; slot < m.cfg.FetchWidth; slot++ {
		if m.fetchIdx < 0 || m.fetchIdx >= len(m.prog.Code) {
			break // end of path; resolve/replay/done logic redirects
		}
		if m.ROBOccupancy() >= m.cfg.ROBEntries {
			m.ctr[CtrROBFullStalls]++
			break
		}
		m.drainIQ()
		if len(m.iqHeap) >= m.cfg.IQEntries {
			m.ctr[CtrIQFullStalls]++
			m.ctr[CtrDecodeBlockedCycles]++
			break
		}
		in := &m.prog.Code[m.fetchIdx]
		if in.Kind == isa.Load && m.lqCount >= m.cfg.LQEntries {
			m.ctr[CtrLSQBlockedLoads]++
			break
		}
		if in.Kind == isa.Store && len(m.sq) >= m.cfg.SQEntries {
			m.ctr[CtrLSQBlockedLoads]++
			break
		}
		if instHasDest(in) && m.inFlightDests >= m.cfg.PhysIntRegs-isa.NumRegs {
			m.ctr[CtrRenameFullRegStalls]++
			break
		}
		if !m.fetchLineReady() {
			break
		}
		next, serial := m.dispatch(in, m.fetchIdx)
		progress = true
		m.fetchIdx = next
		if serial {
			break
		}
	}
	return progress
}

// drainIQ retires issue-queue occupancy entries whose execution has begun.
func (m *Machine) drainIQ() {
	for len(m.iqHeap) > 0 && m.iqHeap[0] <= m.cycle {
		heap.Pop(&m.iqHeap)
		m.ctr[CtrIQInstsIssued]++
	}
}

// fetchLineReady charges I-cache/ITLB latency when fetch crosses into a new
// cache line; it returns false if fetch must stall this cycle.
func (m *Machine) fetchLineReady() bool {
	pc := PCOf(m.fetchIdx)
	line := pc &^ 63
	if line == m.lastFetchLine {
		return true
	}
	m.lastFetchLine = line
	tr := m.itlb.Translate(pc, false)
	lat := tr.Latency + m.l1i.Access(m.cycle, pc, false)
	if lat > 2 {
		m.fetchReadyAt = m.cycle + lat - 2
		m.ctr[CtrFetchIcacheStallCycles] += lat - 2
		return false
	}
	return true
}

func instHasDest(in *isa.Inst) bool {
	switch in.Kind {
	case isa.IntAlu, isa.IntMult, isa.IntDiv, isa.FloatAlu, isa.Load,
		isa.RdTSC, isa.RdRand:
		return in.Dest != isa.R0
	}
	return false
}

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// srcReady returns the cycle at which all the given registers are available.
func (m *Machine) srcReady(regs ...isa.Reg) uint64 {
	var t uint64
	for _, r := range regs {
		if r != isa.R0 && m.regReady[r] > t {
			t = m.regReady[r]
		}
	}
	return t
}

// acquire reserves the earliest-free unit of a class. busy is how long the
// unit stays occupied (1 for pipelined units, the full latency for
// unpipelined ones).
func (m *Machine) acquire(free []uint64, start, busy uint64) uint64 {
	best := 0
	for i := 1; i < len(free); i++ {
		if free[i] < free[best] {
			best = i
		}
	}
	if free[best] > start {
		m.ctr[CtrIQConflicts]++
		start = free[best]
	}
	free[best] = start + busy
	return start
}

// dispatch functionally executes one micro-op, computes its timing, and
// appends it to the ROB. It returns the next fetch index (following the
// *predicted* path) and whether fetch must stop this cycle (serializing op).
func (m *Machine) dispatch(in *isa.Inst, idx int) (int, bool) {
	m.seq++
	wrongPath := m.pendingRedirect != nil
	e := robEntry{
		seq:       m.seq,
		instIdx:   idx,
		kind:      in.Kind,
		phase:     in.Phase,
		wrongPath: wrongPath,
		dest:      in.Dest,
	}
	m.phaseDispatched[in.Phase]++
	m.ctr[CtrFetchInsts]++
	m.ctr[CtrDecodeInsts]++
	m.ctr[CtrRenameRenamedInsts]++
	m.ctr[CtrIQInstsAdded]++
	if wrongPath || m.pendingReplays > 0 {
		m.ctr[CtrSpecInstsAdded]++
	}

	// Base issue time: front-end depth plus serialization barriers.
	start := m.cycle + m.cfg.FetchToDispatch
	if m.serializeBarrier > start {
		m.ctr[CtrFenceStallCycles] += m.serializeBarrier - start
		start = m.serializeBarrier
	}
	if m.policy == PolicyFenceAfterBranch && m.branchFence > start {
		m.ctr[CtrFenceStallCycles] += m.branchFence - start
		start = m.branchFence
	}

	next := idx + 1
	serial := false

	switch in.Kind {
	case isa.Nop:
		e.doneAt = start + 1

	case isa.IntAlu, isa.IntMult, isa.IntDiv, isa.FloatAlu:
		start = maxu(start, m.srcReady(in.Src1, in.Src2))
		var lat uint64
		switch in.Kind {
		case isa.IntAlu:
			start = m.acquire(m.aluFree, start, 1)
			lat = m.cfg.IntALULat
		case isa.IntMult:
			start = m.acquire(m.multFree, start, 1)
			lat = m.cfg.IntMultLat
		case isa.IntDiv:
			start = m.acquire(m.divFree, start, m.cfg.IntDivLat)
			lat = m.cfg.IntDivLat
		case isa.FloatAlu:
			start = m.acquire(m.fpFree, start, 1)
			lat = m.cfg.FPLat
		}
		e.execStart = start
		e.doneAt = start + lat
		v := isa.AluResult(in.Alu, m.specRead(in.Src1), m.specRead(in.Src2), in.Imm)
		m.writeDest(&e, in.Dest, v)

	case isa.Load:
		next, serial = m.dispatchLoad(in, idx, &e, start)

	case isa.Store:
		ea := in.EA(m.specRead)
		start = maxu(start, m.srcReady(in.Base, in.Index))
		if m.memBarrier > start {
			m.ctr[CtrFenceStallCycles] += m.memBarrier - start
			start = m.memBarrier
		}
		start = m.acquire(m.storeFree, start, 1)
		dataReady := m.srcReady(in.Src1)
		e.execStart = start
		e.doneAt = maxu(start, dataReady) + 1
		e.isStore = true
		e.ea = ea &^ 7
		if ea < isa.KernelBase {
			m.sq = append(m.sq, sqEntry{seq: e.seq, addr: ea &^ 7,
				value: m.specRead(in.Src1), addrAt: start, dataAt: e.doneAt})
		}

	case isa.CLFlush:
		ea := in.EA(m.specRead)
		start = maxu(start, m.srcReady(in.Base, in.Index))
		start = m.acquire(m.loadFree, start, 1)
		e.execStart = start
		e.ea = ea
		if m.willExec(start, wrongPath) {
			e.doneAt = start + m.l1d.Flush(start, ea)
			e.didCacheAccess = true
		} else {
			e.doneAt = start + 3
		}

	case isa.Prefetch:
		ea := in.EA(m.specRead)
		start = maxu(start, m.srcReady(in.Base, in.Index))
		e.execStart = start
		e.ea = ea
		if m.willExec(start, wrongPath) {
			m.l1d.Prefetch(start, ea)
			e.didCacheAccess = true
		}
		e.doneAt = start + 1

	case isa.RdTSC:
		e.execStart = start
		e.doneAt = start + 1
		m.writeDest(&e, in.Dest, start)

	case isa.RdRand:
		orig := start
		start = maxu(start, m.rngFree)
		if start > orig {
			m.ctr[CtrRNGContentionCycles] += start - orig
		}
		m.rngFree = start + m.cfg.RdRandLat
		e.execStart = start
		e.doneAt = start + m.cfg.RdRandLat
		m.ctr[CtrRNGReads]++
		m.rng ^= m.rng << 13
		m.rng ^= m.rng >> 7
		m.rng ^= m.rng << 17
		if m.rng == 0 {
			m.rng = 0x9E3779B97F4A7C15
		}
		m.writeDest(&e, in.Dest, m.rng)

	case isa.Fence:
		start = maxu(start, m.maxDoneMem)
		e.execStart = start
		e.doneAt = start + 1
		m.memBarrier = maxu(m.memBarrier, e.doneAt)

	case isa.LFence:
		start = maxu(start, m.maxDoneAll)
		e.execStart = start
		e.doneAt = start + 1
		m.serializeBarrier = maxu(m.serializeBarrier, e.doneAt)

	case isa.Syscall, isa.Serialize:
		start = maxu(start, m.maxDoneAll)
		e.execStart = start
		lat := uint64(10)
		if in.Kind == isa.Syscall {
			lat = m.cfg.SyscallLat
			m.ctr[CtrKernelSyscalls]++
		}
		e.doneAt = start + lat
		m.serializeBarrier = maxu(m.serializeBarrier, e.doneAt)
		m.ctr[CtrSerializeDrains]++
		m.ctr[CtrRenameSerializingInsts]++
		serial = true

	case isa.Quiesce:
		e.execStart = start
		e.doneAt = start + 1
		m.quiescing = true
		serial = true

	case isa.Branch, isa.Jump, isa.IndirectJump, isa.Call, isa.Ret:
		next = m.dispatchCtrl(in, idx, &e, start)
	}

	m.maxDoneAll = maxu(m.maxDoneAll, e.doneAt)
	if in.Kind.IsMem() {
		m.maxDoneMem = maxu(m.maxDoneMem, e.doneAt)
	}
	if e.isCtrl {
		m.maxDoneCtrl = maxu(m.maxDoneCtrl, e.doneAt)
		if m.policy == PolicyFenceAfterBranch {
			// The injected fence after this branch serializes all
			// younger work against everything currently in flight.
			m.branchFence = maxu(m.branchFence, maxu(m.maxDoneAll, e.doneAt))
		}
	}
	m.ctr[CtrIEWExecutedInsts]++
	if e.execStart > m.cycle {
		heap.Push(&m.iqHeap, e.execStart)
	}
	m.rob = append(m.rob, e)

	if e.mispredict && !wrongPath && m.pendingRedirect == nil {
		m.pendingRedirect = &redirect{
			seq:        e.seq,
			doneAt:     e.doneAt,
			actualNext: e.actualNext,
			ckpt:       e.ckpt,
		}
	}
	return next, serial
}

// willExec reports whether a micro-op starting at cycle `start` really
// executes before any pending squash kills it — the gate that decides
// whether transient work touches the caches.
func (m *Machine) willExec(start uint64, wrongPath bool) bool {
	if wrongPath && m.pendingRedirect != nil && start >= m.pendingRedirect.doneAt {
		return false
	}
	if m.pendingReplays > 0 && start >= m.replayGate {
		return false
	}
	return true
}

// writeDest records the destination value both speculatively and for commit.
func (m *Machine) writeDest(e *robEntry, dest isa.Reg, v uint64) {
	if dest == isa.R0 {
		return
	}
	e.hasDest = true
	e.destValue = v
	m.specWrite(dest, v)
	m.regReady[dest] = e.doneAt
	m.inFlightDests++
}

// writeDestTransient installs a transient value speculatively while
// recording a different architectural result (replay loads).
func (m *Machine) writeDestTransient(e *robEntry, dest isa.Reg, transient, architectural uint64) {
	if dest == isa.R0 {
		return
	}
	e.hasDest = true
	e.destValue = architectural
	m.specWrite(dest, transient)
	m.regReady[dest] = e.doneAt
	m.inFlightDests++
}
