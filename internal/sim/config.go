// Package sim implements the cycle-level out-of-order core: an 8-wide
// fetch/dispatch/issue/commit pipeline with a 192-entry ROB, 32-entry load
// and store queues, tournament branch prediction, cache hierarchy, TLBs and
// DRAM — the configuration of the paper's Table II.
//
// The model is functional-first/timing-decoupled: micro-ops execute
// functionally at dispatch along the *predicted* path (wrong-path
// instructions really execute and really touch the caches — the transient
// leakage the detector must catch), while a scoreboard computes issue and
// completion cycles from data dependences, execution-unit contention and
// memory latency. Mispredicted branches squash younger work when they
// resolve; faulting and assist loads squash at commit, giving a
// Meltdown/LVI transient window naturally bounded by ROB occupancy.
package sim

import (
	"evax/internal/branch"
	"evax/internal/cache"
	"evax/internal/dram"
	"evax/internal/tlb"
)

// Config holds all architectural parameters (paper Table II).
type Config struct {
	FetchWidth  int
	CommitWidth int
	ROBEntries  int
	IQEntries   int
	LQEntries   int
	SQEntries   int
	PhysIntRegs int

	IntALUs   int
	IntMults  int
	IntDivs   int
	FPUnits   int
	LoadPorts int
	StorePort int

	IntALULat  uint64
	IntMultLat uint64
	IntDivLat  uint64
	FPLat      uint64

	FetchToDispatch uint64 // front-end depth in cycles
	SquashPenalty   uint64 // fetch redirect bubble after a squash
	SyscallLat      uint64
	RdRandLat       uint64

	Branch branch.Config
	L1I    cache.Config
	L1D    cache.Config
	L2     cache.Config
	DTLB   tlb.Config
	ITLB   tlb.Config
	DRAM   dram.Config

	// SpecBufferEntries sizes the InvisiSpec speculative buffer.
	SpecBufferEntries int

	// Prefetcher configures the optional stride prefetcher.
	Prefetcher PrefetchConfig
}

// DefaultConfig mirrors the paper's Table II: X86 O3 single core at 2 GHz,
// 8-wide, ROB=192, LQ=SQ=32, 256 physical integer registers, tournament
// predictor with 4096 BTB entries and 16 RAS entries, 32KB L1I, 64KB L1D,
// 2MB L2.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  8,
		CommitWidth: 8,
		ROBEntries:  192,
		IQEntries:   64,
		LQEntries:   32,
		SQEntries:   32,
		PhysIntRegs: 256,

		IntALUs:   4,
		IntMults:  1,
		IntDivs:   1,
		FPUnits:   2,
		LoadPorts: 2,
		StorePort: 1,

		IntALULat:  1,
		IntMultLat: 3,
		IntDivLat:  20,
		FPLat:      4,

		FetchToDispatch: 5,
		SquashPenalty:   8,
		SyscallLat:      150,
		RdRandLat:       170,

		Branch: branch.DefaultConfig(),
		L1I:    cache.L1IConfig(),
		L1D:    cache.L1DConfig(),
		L2:     cache.L2Config(),
		DTLB:   tlb.DefaultDTLB(),
		ITLB:   tlb.DefaultITLB(),
		DRAM:   dram.DefaultConfig(),

		SpecBufferEntries: 32,

		Prefetcher: DefaultPrefetchConfig(),
	}
}

// Policy selects the active defense mechanism. The adaptive controller in
// internal/defense flips between PolicyNone (performance mode) and a
// protective policy (secure mode) on detector flags.
type Policy uint8

const (
	// PolicyNone runs unprotected at full speed.
	PolicyNone Policy = iota
	// PolicyFenceAfterBranch inserts an implicit serialization after
	// every branch: younger instructions wait for branch resolution
	// (the Spectre-model fencing defense, 74% always-on overhead in the
	// paper).
	PolicyFenceAfterBranch
	// PolicyFenceBeforeLoad serializes every load against all older
	// instructions (the Futuristic-model fencing defense that also stops
	// LVI; ~200% always-on overhead in the paper).
	PolicyFenceBeforeLoad
	// PolicyInvisiSpecSpectre sends loads issued under unresolved
	// branches to the speculative buffer (InvisiSpec, Spectre model).
	PolicyInvisiSpecSpectre
	// PolicyInvisiSpecFuturistic sends every load not at the ROB head to
	// the speculative buffer (InvisiSpec, Futuristic model).
	PolicyInvisiSpecFuturistic
)

func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyFenceAfterBranch:
		return "fence-after-branch"
	case PolicyFenceBeforeLoad:
		return "fence-before-load"
	case PolicyInvisiSpecSpectre:
		return "invisispec-spectre"
	case PolicyInvisiSpecFuturistic:
		return "invisispec-futuristic"
	}
	return "policy(?)"
}

// CodeBase is the virtual address of instruction index 0; instructions are
// 4 bytes apart for I-cache/ITLB purposes.
const CodeBase uint64 = 0x0040_0000

// PCOf maps an instruction index to its virtual address.
func PCOf(idx int) uint64 { return CodeBase + uint64(idx)*4 }
