package sim

import "evax/internal/isa"

// dispatchLoad handles the load micro-op: TLB translation, store-queue
// interaction (forwarding, speculative bypass, assist injection), kernel
// permission faults, and the cache access — routed through the InvisiSpec
// buffer when the active policy demands it.
func (m *Machine) dispatchLoad(in *isa.Inst, idx int, e *robEntry, start uint64) (int, bool) {
	ea := in.EA(m.specRead)
	start = maxu(start, m.srcReady(in.Base, in.Index))
	if m.memBarrier > start {
		m.ctr[CtrFenceStallCycles] += m.memBarrier - start
		start = m.memBarrier
	}
	if m.policy == PolicyFenceBeforeLoad && m.maxDoneAll+1 > start {
		m.ctr[CtrFenceStallCycles] += m.maxDoneAll + 1 - start
		start = m.maxDoneAll + 1
	}
	start = m.acquire(m.loadFree, start, 1)
	e.execStart = start
	e.isLoad = true
	e.ea = ea
	m.lqCount++

	kernel := in.Kernel || ea >= isa.KernelBase
	tr := m.dtlb.Translate(ea, false)
	lat := tr.Latency

	w := ea &^ 7
	var match *sqEntry
	for i := len(m.sq) - 1; i >= 0; i-- {
		if m.sq[i].addr == w {
			match = &m.sq[i]
			break
		}
	}
	speculative := m.maxDoneCtrl > start
	if speculative {
		m.ctr[CtrSpecLoadsExecuted]++
	}

	needsCache := true
	var transient, architectural uint64
	replay := false

	switch {
	case in.NoFwd:
		// Microcode-assist path (LVI/MDS modelling): the load
		// transiently receives stale data from a 4K-aliasing store
		// buffer entry — attacker-injected — then replays at commit.
		var inj uint64
		for i := len(m.sq) - 1; i >= 0; i-- {
			if m.sq[i].addr != w && (m.sq[i].addr&0xFFF) == (w&0xFFF) {
				inj = m.sq[i].value
				break
			}
		}
		e.assistReplay = true
		replay = true
		lat += 8 // assist invocation
		transient, architectural = inj, m.memRead(ea)

	case kernel:
		// Permission fault delivered at commit; the secret is
		// transiently forwarded (the Meltdown window).
		e.fault = true
		replay = true
		transient, architectural = m.memRead(ea), 0

	case match != nil && match.addrAt <= start:
		// The store's address is resolved: forward, waiting for the
		// data if it is still in flight.
		m.ctr[CtrLSQForwLoads]++
		if speculative {
			m.ctr[CtrLSQSpecLoadsHitWrQueue]++
		}
		if match.dataAt > start {
			lat += match.dataAt - start
		}
		lat++
		needsCache = false
		transient = match.value
		architectural = match.value

	case match != nil:
		// The newest matching store has not resolved: the load
		// speculatively bypasses it and reads stale memory
		// (Spectre-STL); the violation is caught at commit.
		e.stlViolation = true
		replay = true
		transient, architectural = m.memory[w], match.value

	default:
		v := m.memory[w]
		transient, architectural = v, v
	}

	if needsCache {
		if m.willExec(start, e.wrongPath) {
			specLd := false
			switch m.policy {
			case PolicyInvisiSpecSpectre:
				// Unsafe while an older branch is unresolved.
				specLd = speculative
			case PolicyInvisiSpecFuturistic:
				// Unsafe until the load reaches the ROB head.
				specLd = m.ROBOccupancy() > 0
			}
			if specLd {
				lat += m.specBuf.Load(start, ea)
				e.specLoad = true
			} else {
				lat += m.l1d.Access(start, ea, false)
				e.didCacheAccess = true
			}
		} else {
			lat += 3 // nominal; the op is squashed before executing
		}
	}

	// Demand-stream training of the stride prefetcher (squashed-path
	// loads train it too, as in real front ends).
	if m.pf != nil && needsCache && !kernel {
		for _, pa := range m.pf.observe(PCOf(idx), ea) {
			m.l1d.Prefetch(start+1, pa)
		}
	}

	e.doneAt = start + lat
	if replay {
		e.ckpt = m.takeCheckpoint()
		e.squashAtEst = maxu(e.doneAt, m.maxDoneAll) + 1
		if m.pendingReplays == 0 || e.squashAtEst < m.replayGate {
			m.replayGate = e.squashAtEst
		}
		m.pendingReplays++
		m.writeDestTransient(e, in.Dest, transient, architectural)
	} else {
		m.writeDest(e, in.Dest, transient)
	}
	return idx + 1, false
}

// dispatchCtrl handles control-flow micro-ops: prediction, functional
// resolution, and misprediction checkpointing. It returns the predicted
// next fetch index (fetch always follows the prediction; the squash
// machinery repairs wrong paths).
func (m *Machine) dispatchCtrl(in *isa.Inst, idx int, e *robEntry, start uint64) int {
	e.isCtrl = true
	m.inFlightCtrl++
	pc := PCOf(idx)
	var predNext, actualNext int

	switch in.Kind {
	case isa.Branch:
		d := m.bp.PredictDirection(pc)
		e.predDir = d
		e.hasPredDir = true
		start = maxu(start, m.srcReady(in.Src1, in.Src2))
		start = m.acquire(m.aluFree, start, 1)
		e.execStart = start
		e.doneAt = start + 1
		taken := in.Cond.Eval(m.specRead(in.Src1), m.specRead(in.Src2))
		actualNext, predNext = idx+1, idx+1
		if taken {
			actualNext = in.Target
		}
		if d.Taken {
			predNext = in.Target
		}

	case isa.Jump:
		e.execStart = start
		e.doneAt = start + 1
		predNext, actualNext = in.Target, in.Target

	case isa.Call:
		e.execStart = start
		e.doneAt = start + 1
		predNext, actualNext = in.Target, in.Target
		m.callStack = append(m.callStack, idx+1)
		m.bp.PushRAS(idx + 1)

	case isa.Ret:
		e.execStart = start
		e.doneAt = start + 2
		p, ok := m.bp.PopRAS()
		e.rasUsed = ok
		if n := len(m.callStack); n > 0 {
			actualNext = m.callStack[n-1]
			m.callStack = m.callStack[:n-1]
		} else {
			actualNext = len(m.prog.Code) // ret on empty stack terminates
		}
		if ok {
			predNext = p
		} else {
			predNext = idx + 1
		}
		e.rasCorrect = ok && p == actualNext

	case isa.IndirectJump:
		start = maxu(start, m.srcReady(in.Src1))
		start = m.acquire(m.aluFree, start, 1)
		e.execStart = start
		e.doneAt = start + 1
		t, had := m.bp.PredictTarget(pc)
		e.btbPred, e.btbHad = t, had
		if had && t >= 0 && t <= len(m.prog.Code) {
			predNext = t
		} else {
			predNext = idx + 1
		}
		a := int(m.specRead(in.Src1))
		if a < 0 || a > len(m.prog.Code) {
			a = len(m.prog.Code)
		}
		actualNext = a
	}

	e.actualNext = actualNext
	if actualNext != predNext {
		e.mispredict = true
		e.ckpt = m.takeCheckpoint()
	}
	return predNext
}
