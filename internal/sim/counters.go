package sim

import "evax/internal/hpc"

// CtrID is a typed index into the machine's flat counter array. Every
// catalog-exposed event counter has exactly one CtrID; the gem5-style name
// registry in counterNames is metadata only — the hot path (pipeline
// increments and ReadCounters) never touches a name or a closure.
//
// The evaxlint "ctrname" rule enforces the registry contract: the CtrID
// constants and counterNames stay dense and 1:1 (every ID below NumCounters
// has a unique, non-empty name and no orphan constants exist).
type CtrID int

// The base event space exposed to the HPC fabric, as typed counter IDs.
// Names follow gem5 conventions (the paper's Table I references several of
// them verbatim: lsq.forwLoads, iq.SquashedNonSpecLD,
// rename.serializingInsts, dcache.ReadReq_mshr_miss_latency,
// membus.trans_dist::ReadSharedReq, …). With the derived expansion in
// internal/hpc (7 views per event) this ~115-event base grows to an
// ~800-dimensional derived space, standing in for the ~1160 counters the
// paper collects.
const (
	// Fetch.
	CtrFetchCycles CtrID = iota
	CtrFetchInsts
	CtrFetchStallCycles
	CtrFetchIcacheStallCycles
	CtrFetchSquashCycles
	CtrFetchPendingQuiesceStallCycles

	// Decode / rename.
	CtrDecodeInsts
	CtrDecodeBlockedCycles
	CtrRenameRenamedInsts
	CtrRenameUndone
	CtrRenameSerializingInsts
	CtrRenameFullRegStalls
	CtrRenameCommittedMaps

	// Issue queue / execute.
	CtrIQInstsAdded
	CtrIQInstsIssued
	CtrIQFullStalls
	CtrIQSquashedInstsExamined
	CtrIQSquashedNonSpecLD
	CtrIQConflicts
	CtrIEWExecutedInsts
	CtrIEWExecSquashedInsts
	CtrIEWMemOrderViolation
	CtrIEWBranchMispredicts

	// Load/store queue.
	CtrLSQForwLoads
	CtrLSQSquashedLoads
	CtrLSQSquashedStores
	CtrLSQIgnoredResponses
	CtrLSQRescheduledLoads
	CtrLSQBlockedLoads
	CtrLSQSpecLoadsHitWrQueue

	// ROB / commit.
	CtrROBFullStalls
	CtrROBReads
	CtrCommitCommittedInsts
	CtrCommitBranches
	CtrCommitLoads
	CtrCommitStores
	CtrCommitFaults
	CtrCommitSquashedInsts

	// Speculation.
	CtrSpecInstsAdded
	CtrSpecLoadsExecuted

	// Fences / serialization / special units.
	CtrFenceStallCycles
	CtrSerializeDrains
	CtrRNGReads
	CtrRNGContentionCycles
	CtrKernelSyscalls
	CtrFetchQuiesceCycles

	// Branch predictor.
	CtrBranchPredLookups
	CtrBranchPredCondPredicted
	CtrBranchPredCondIncorrect
	CtrBranchPredBTBLookups
	CtrBranchPredBTBHits
	CtrBranchPredBTBMispredicts
	CtrBranchPredRASUsed
	CtrBranchPredRASIncorrect
	CtrBranchPredRASOverflows
	CtrBranchPredRASUnderflows
	CtrBranchPredUsedLocal
	CtrBranchPredUsedGlobal
	CtrBranchPredChoiceFlips
	CtrBranchPredMistrainAliasing

	// L1 data cache.
	CtrDcacheReadReqHits
	CtrDcacheReadReqMisses
	CtrDcacheWriteReqHits
	CtrDcacheWriteReqMisses
	CtrDcacheReadReqMshrHits
	CtrDcacheReadReqMshrMissLatency
	CtrDcacheMshrFullStalls
	CtrDcacheCleanEvicts
	CtrDcacheDirtyEvicts
	CtrDcacheFlushes
	CtrDcacheFlushMisses
	CtrDcachePrefetches
	CtrDcachePrefetchFills
	CtrDcacheWriteBufFull
	CtrDcacheSpecFills
	CtrDcacheSpecExposes
	CtrDcacheSpecSquashed
	CtrDcacheSpecBufHits
	CtrDcacheWritebackReqs
	CtrDcacheInvalidatesRecvd

	// L1 instruction cache.
	CtrIcacheReadReqHits
	CtrIcacheReadReqMisses
	CtrIcacheReadReqMshrHits
	CtrIcacheCleanEvicts
	CtrIcacheMshrMissLatency

	// Shared L2 / memory bus.
	CtrL2ReadReqHits
	CtrL2ReadReqMisses
	CtrL2WriteReqHits
	CtrL2WriteReqMisses
	CtrL2ReadReqMshrHits
	CtrL2MshrMissLatency
	CtrL2CleanEvicts
	CtrL2DirtyEvicts
	CtrL2Flushes
	CtrL2WriteBufFull
	CtrMembusTransDistReadSharedReq
	CtrMembusTransDistWritebackDirty

	// TLBs.
	CtrDTLBRdHits
	CtrDTLBRdMisses
	CtrDTLBWrMisses
	CtrDTLBWalks
	CtrDTLBPermFaults
	CtrITLBRdMisses
	CtrITLBFlushes

	// DRAM.
	CtrDRAMReads
	CtrDRAMWrites
	CtrDRAMActivates
	CtrDRAMRowHits
	CtrDRAMRowConflicts
	CtrDRAMRefreshes
	CtrDRAMTRRRefreshes
	CtrDRAMBytesRead
	CtrDRAMBytesWritten
	CtrDRAMBytesReadWrQ
	CtrDRAMSelfRefreshEnergy

	// NumCounters is the size of the flat counter array (and of the
	// catalog); it must be the last constant in this block.
	NumCounters
)

// counterNames is the name registry: pure metadata binding each CtrID to
// its gem5-style catalog name. The keys must cover every CtrID exactly once
// (evaxlint "ctrname" checks density and uniqueness).
var counterNames = [NumCounters]string{
	CtrFetchCycles:                    "fetch.Cycles",
	CtrFetchInsts:                     "fetch.Insts",
	CtrFetchStallCycles:               "fetch.StallCycles",
	CtrFetchIcacheStallCycles:         "fetch.IcacheStallCycles",
	CtrFetchSquashCycles:              "fetch.SquashCycles",
	CtrFetchPendingQuiesceStallCycles: "fetch.PendingQuiesceStallCycles",
	CtrDecodeInsts:                    "decode.Insts",
	CtrDecodeBlockedCycles:            "decode.BlockedCycles",
	CtrRenameRenamedInsts:             "rename.RenamedInsts",
	CtrRenameUndone:                   "rename.Undone",
	CtrRenameSerializingInsts:         "rename.serializingInsts",
	CtrRenameFullRegStalls:            "rename.FullRegStalls",
	CtrRenameCommittedMaps:            "rename.CommittedMaps",
	CtrIQInstsAdded:                   "iq.InstsAdded",
	CtrIQInstsIssued:                  "iq.InstsIssued",
	CtrIQFullStalls:                   "iq.FullStalls",
	CtrIQSquashedInstsExamined:        "iq.SquashedInstsExamined",
	CtrIQSquashedNonSpecLD:            "iq.SquashedNonSpecLD",
	CtrIQConflicts:                    "iq.Conflicts",
	CtrIEWExecutedInsts:               "iew.ExecutedInsts",
	CtrIEWExecSquashedInsts:           "iew.ExecSquashedInsts",
	CtrIEWMemOrderViolation:           "iew.MemOrderViolation",
	CtrIEWBranchMispredicts:           "iew.BranchMispredicts",
	CtrLSQForwLoads:                   "lsq.forwLoads",
	CtrLSQSquashedLoads:               "lsq.squashedLoads",
	CtrLSQSquashedStores:              "lsq.squashedStores",
	CtrLSQIgnoredResponses:            "lsq.ignoredResponses",
	CtrLSQRescheduledLoads:            "lsq.rescheduledLoads",
	CtrLSQBlockedLoads:                "lsq.blockedLoads",
	CtrLSQSpecLoadsHitWrQueue:         "lsq.SpecLoadsHitWrQueue",
	CtrROBFullStalls:                  "rob.FullStalls",
	CtrROBReads:                       "rob.Reads",
	CtrCommitCommittedInsts:           "commit.CommittedInsts",
	CtrCommitBranches:                 "commit.Branches",
	CtrCommitLoads:                    "commit.Loads",
	CtrCommitStores:                   "commit.Stores",
	CtrCommitFaults:                   "commit.Faults",
	CtrCommitSquashedInsts:            "commit.SquashedInsts",
	CtrSpecInstsAdded:                 "spec.InstsAdded",
	CtrSpecLoadsExecuted:              "spec.LoadsExecuted",
	CtrFenceStallCycles:               "fence.StallCycles",
	CtrSerializeDrains:                "serialize.Drains",
	CtrRNGReads:                       "rng.Reads",
	CtrRNGContentionCycles:            "rng.ContentionCycles",
	CtrKernelSyscalls:                 "kernel.Syscalls",
	CtrFetchQuiesceCycles:             "fetch.QuiesceCycles",
	CtrBranchPredLookups:              "branchPred.lookups",
	CtrBranchPredCondPredicted:        "branchPred.condPredicted",
	CtrBranchPredCondIncorrect:        "branchPred.condIncorrect",
	CtrBranchPredBTBLookups:           "branchPred.BTBLookups",
	CtrBranchPredBTBHits:              "branchPred.BTBHits",
	CtrBranchPredBTBMispredicts:       "branchPred.BTBMispredicts",
	CtrBranchPredRASUsed:              "branchPred.RASUsed",
	CtrBranchPredRASIncorrect:         "branchPred.RASIncorrect",
	CtrBranchPredRASOverflows:         "branchPred.RASOverflows",
	CtrBranchPredRASUnderflows:        "branchPred.RASUnderflows",
	CtrBranchPredUsedLocal:            "branchPred.usedLocal",
	CtrBranchPredUsedGlobal:           "branchPred.usedGlobal",
	CtrBranchPredChoiceFlips:          "branchPred.choiceFlips",
	CtrBranchPredMistrainAliasing:     "branchPred.mistrainAliasing",
	CtrDcacheReadReqHits:              "dcache.ReadReq_hits",
	CtrDcacheReadReqMisses:            "dcache.ReadReq_misses",
	CtrDcacheWriteReqHits:             "dcache.WriteReq_hits",
	CtrDcacheWriteReqMisses:           "dcache.WriteReq_misses",
	CtrDcacheReadReqMshrHits:          "dcache.ReadReq_mshr_hits",
	CtrDcacheReadReqMshrMissLatency:   "dcache.ReadReq_mshr_miss_latency",
	CtrDcacheMshrFullStalls:           "dcache.mshr_full_stalls",
	CtrDcacheCleanEvicts:              "dcache.CleanEvicts",
	CtrDcacheDirtyEvicts:              "dcache.DirtyEvicts",
	CtrDcacheFlushes:                  "dcache.Flushes",
	CtrDcacheFlushMisses:              "dcache.FlushMisses",
	CtrDcachePrefetches:               "dcache.Prefetches",
	CtrDcachePrefetchFills:            "dcache.PrefetchFills",
	CtrDcacheWriteBufFull:             "dcache.WriteBufFull",
	CtrDcacheSpecFills:                "dcache.SpecFills",
	CtrDcacheSpecExposes:              "dcache.SpecExposes",
	CtrDcacheSpecSquashed:             "dcache.SpecSquashed",
	CtrDcacheSpecBufHits:              "dcache.SpecBufHits",
	CtrDcacheWritebackReqs:            "dcache.WritebackReqs",
	CtrDcacheInvalidatesRecvd:         "dcache.InvalidatesRecvd",
	CtrIcacheReadReqHits:              "icache.ReadReq_hits",
	CtrIcacheReadReqMisses:            "icache.ReadReq_misses",
	CtrIcacheReadReqMshrHits:          "icache.ReadReq_mshr_hits",
	CtrIcacheCleanEvicts:              "icache.CleanEvicts",
	CtrIcacheMshrMissLatency:          "icache.mshr_miss_latency",
	CtrL2ReadReqHits:                  "l2.ReadReq_hits",
	CtrL2ReadReqMisses:                "l2.ReadReq_misses",
	CtrL2WriteReqHits:                 "l2.WriteReq_hits",
	CtrL2WriteReqMisses:               "l2.WriteReq_misses",
	CtrL2ReadReqMshrHits:              "l2.ReadReq_mshr_hits",
	CtrL2MshrMissLatency:              "l2.mshr_miss_latency",
	CtrL2CleanEvicts:                  "l2.CleanEvicts",
	CtrL2DirtyEvicts:                  "l2.DirtyEvicts",
	CtrL2Flushes:                      "l2.Flushes",
	CtrL2WriteBufFull:                 "l2.WriteBufFull",
	CtrMembusTransDistReadSharedReq:   "membus.trans_dist::ReadSharedReq",
	CtrMembusTransDistWritebackDirty:  "membus.trans_dist::WritebackDirty",
	CtrDTLBRdHits:                     "dtlb.rdHits",
	CtrDTLBRdMisses:                   "dtlb.rdMisses",
	CtrDTLBWrMisses:                   "dtlb.wrMisses",
	CtrDTLBWalks:                      "dtlb.walks",
	CtrDTLBPermFaults:                 "dtlb.permFaults",
	CtrITLBRdMisses:                   "itlb.rdMisses",
	CtrITLBFlushes:                    "itlb.flushes",
	CtrDRAMReads:                      "dram.Reads",
	CtrDRAMWrites:                     "dram.Writes",
	CtrDRAMActivates:                  "dram.Activates",
	CtrDRAMRowHits:                    "dram.RowHits",
	CtrDRAMRowConflicts:               "dram.RowConflicts",
	CtrDRAMRefreshes:                  "dram.Refreshes",
	CtrDRAMTRRRefreshes:               "dram.TRRRefreshes",
	CtrDRAMBytesRead:                  "dram.bytesRead",
	CtrDRAMBytesWritten:               "dram.bytesWritten",
	CtrDRAMBytesReadWrQ:               "dram.bytesReadWrQ",
	CtrDRAMSelfRefreshEnergy:          "dram.selfRefreshEnergy",
}

// Name returns the counter's gem5-style catalog name.
func (id CtrID) Name() string { return counterNames[id] }

// catalog is built once from the name registry.
var catalog = hpc.MustCatalog(counterNames[:])

// CounterCatalog returns the machine's base event catalog (shared by every
// Machine instance; the catalog is static).
func CounterCatalog() *hpc.Catalog { return catalog }

// ctrLink wires one component-backed counter slot to its source field(s).
// Links are resolved once at machine construction — component stats keep
// living in their components (cache, branch, tlb, dram own their Stats for
// their own tests), and syncCounters folds them into the flat array with
// one pointer dereference per counter, no closures and no name lookups.
// src[1] is non-nil only for composite counters (the membus distributions,
// which sum two component sources).
type ctrLink struct {
	id  CtrID
	src [2]*uint64
}

// counterLinks resolves the component-backed slots against m's components.
// Machine-level counters are absent: the pipeline increments m.ctr directly.
func (m *Machine) counterLinks() []ctrLink {
	l := func(id CtrID, a *uint64) ctrLink { return ctrLink{id, [2]*uint64{a, nil}} }
	l2 := func(id CtrID, a, b *uint64) ctrLink { return ctrLink{id, [2]*uint64{a, b}} }
	return []ctrLink{
		l(CtrBranchPredLookups, &m.bp.Stats.Lookups),
		l(CtrBranchPredCondPredicted, &m.bp.Stats.CondPredicted),
		l(CtrBranchPredCondIncorrect, &m.bp.Stats.CondIncorrect),
		l(CtrBranchPredBTBLookups, &m.bp.Stats.BTBLookups),
		l(CtrBranchPredBTBHits, &m.bp.Stats.BTBHits),
		l(CtrBranchPredBTBMispredicts, &m.bp.Stats.BTBMispredicts),
		l(CtrBranchPredRASUsed, &m.bp.Stats.RASUsed),
		l(CtrBranchPredRASIncorrect, &m.bp.Stats.RASIncorrect),
		l(CtrBranchPredRASOverflows, &m.bp.Stats.RASOverflows),
		l(CtrBranchPredRASUnderflows, &m.bp.Stats.RASUnderflows),
		l(CtrBranchPredUsedLocal, &m.bp.Stats.LocalUsed),
		l(CtrBranchPredUsedGlobal, &m.bp.Stats.GlobalUsed),
		l(CtrBranchPredChoiceFlips, &m.bp.Stats.ChoiceFlips),
		l(CtrBranchPredMistrainAliasing, &m.bp.Stats.MistrainAliasing),
		l(CtrDcacheReadReqHits, &m.l1d.Stats.ReadHits),
		l(CtrDcacheReadReqMisses, &m.l1d.Stats.ReadMisses),
		l(CtrDcacheWriteReqHits, &m.l1d.Stats.WriteHits),
		l(CtrDcacheWriteReqMisses, &m.l1d.Stats.WriteMisses),
		l(CtrDcacheReadReqMshrHits, &m.l1d.Stats.MSHRHits),
		l(CtrDcacheReadReqMshrMissLatency, &m.l1d.Stats.MSHRMissLatency),
		l(CtrDcacheMshrFullStalls, &m.l1d.Stats.MSHRFullStalls),
		l(CtrDcacheCleanEvicts, &m.l1d.Stats.CleanEvicts),
		l(CtrDcacheDirtyEvicts, &m.l1d.Stats.DirtyEvicts),
		l(CtrDcacheFlushes, &m.l1d.Stats.Flushes),
		l(CtrDcacheFlushMisses, &m.l1d.Stats.FlushMisses),
		l(CtrDcachePrefetches, &m.l1d.Stats.Prefetches),
		l(CtrDcachePrefetchFills, &m.l1d.Stats.PrefetchFills),
		l(CtrDcacheWriteBufFull, &m.l1d.Stats.WriteBufFull),
		l(CtrDcacheSpecFills, &m.l1d.Stats.SpecFills),
		l(CtrDcacheSpecExposes, &m.l1d.Stats.SpecExposes),
		l(CtrDcacheSpecSquashed, &m.l1d.Stats.SpecSquashed),
		l(CtrDcacheSpecBufHits, &m.l1d.Stats.SpecBufHits),
		l(CtrDcacheWritebackReqs, &m.l1d.Stats.WritebackReqs),
		l(CtrDcacheInvalidatesRecvd, &m.l1d.Stats.InvalidatesRecvd),
		l(CtrIcacheReadReqHits, &m.l1i.Stats.ReadHits),
		l(CtrIcacheReadReqMisses, &m.l1i.Stats.ReadMisses),
		l(CtrIcacheReadReqMshrHits, &m.l1i.Stats.MSHRHits),
		l(CtrIcacheCleanEvicts, &m.l1i.Stats.CleanEvicts),
		l(CtrIcacheMshrMissLatency, &m.l1i.Stats.MSHRMissLatency),
		l(CtrL2ReadReqHits, &m.l2.Stats.ReadHits),
		l(CtrL2ReadReqMisses, &m.l2.Stats.ReadMisses),
		l(CtrL2WriteReqHits, &m.l2.Stats.WriteHits),
		l(CtrL2WriteReqMisses, &m.l2.Stats.WriteMisses),
		l(CtrL2ReadReqMshrHits, &m.l2.Stats.MSHRHits),
		l(CtrL2MshrMissLatency, &m.l2.Stats.MSHRMissLatency),
		l(CtrL2CleanEvicts, &m.l2.Stats.CleanEvicts),
		l(CtrL2DirtyEvicts, &m.l2.Stats.DirtyEvicts),
		l(CtrL2Flushes, &m.l2.Stats.Flushes),
		l(CtrL2WriteBufFull, &m.l2.Stats.WriteBufFull),
		l2(CtrMembusTransDistReadSharedReq, &m.l1d.Stats.ReadSharedReqs, &m.l1i.Stats.ReadSharedReqs),
		l2(CtrMembusTransDistWritebackDirty, &m.l1d.Stats.WritebackReqs, &m.l2.Stats.WritebackReqs),
		l(CtrDTLBRdHits, &m.dtlb.Stats.RdHits),
		l(CtrDTLBRdMisses, &m.dtlb.Stats.RdMisses),
		l(CtrDTLBWrMisses, &m.dtlb.Stats.WrMisses),
		l(CtrDTLBWalks, &m.dtlb.Stats.Walks),
		l(CtrDTLBPermFaults, &m.dtlb.Stats.PermFault),
		l(CtrITLBRdMisses, &m.itlb.Stats.RdMisses),
		l(CtrITLBFlushes, &m.itlb.Stats.Flushes),
		l(CtrDRAMReads, &m.mem.Stats.Reads),
		l(CtrDRAMWrites, &m.mem.Stats.Writes),
		l(CtrDRAMActivates, &m.mem.Stats.Activates),
		l(CtrDRAMRowHits, &m.mem.Stats.RowHits),
		l(CtrDRAMRowConflicts, &m.mem.Stats.RowConflicts),
		l(CtrDRAMRefreshes, &m.mem.Stats.Refreshes),
		l(CtrDRAMTRRRefreshes, &m.mem.Stats.TRRRefreshes),
		l(CtrDRAMBytesRead, &m.mem.Stats.BytesRead),
		l(CtrDRAMBytesWritten, &m.mem.Stats.BytesWritten),
		l(CtrDRAMBytesReadWrQ, &m.mem.Stats.BytesReadWrQ),
		l(CtrDRAMSelfRefreshEnergy, &m.mem.Stats.SelfRefreshTicks),
	}
}

// syncCounters folds the component-backed sources into the flat array.
func (m *Machine) syncCounters() {
	for i := range m.links {
		ln := &m.links[i]
		v := *ln.src[0]
		if ln.src[1] != nil {
			v += *ln.src[1]
		}
		m.ctr[ln.id] = v
	}
}

// ReadCounters implements hpc.Source: one fixed sync of the
// component-backed slots, then a single copy of the flat array. No
// closures, no per-counter dispatch, no allocation.
func (m *Machine) ReadCounters(out []uint64) {
	m.syncCounters()
	copy(out, m.ctr[:])
}

// Ctr returns the current value of one counter (component-backed slots are
// synced first; tests and tooling read through this).
func (m *Machine) Ctr(id CtrID) uint64 {
	m.syncCounters()
	return m.ctr[id]
}
