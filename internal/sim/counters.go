package sim

import "evax/internal/hpc"

// counterDef binds a gem5-style counter name to its source in the machine.
type counterDef struct {
	name string
	get  func(*Machine) uint64
}

// counterDefs is the base event space exposed to the HPC fabric. Names
// follow gem5 conventions (the paper's Table I references several of them
// verbatim: lsq.forwLoads, iq.SquashedNonSpecLD, rename.serializingInsts,
// dcache.ReadReq_mshr_miss_latency, membus.trans_dist::ReadSharedReq, …).
// With the derived expansion in internal/hpc (7 views per event) this
// ~115-event base grows to an ~800-dimensional derived space, standing in
// for the ~1160 counters the paper collects.
var counterDefs = []counterDef{
	// Fetch.
	{"fetch.Cycles", func(m *Machine) uint64 { return m.C.FetchCycles }},
	{"fetch.Insts", func(m *Machine) uint64 { return m.C.FetchInsts }},
	{"fetch.StallCycles", func(m *Machine) uint64 { return m.C.FetchStallCycles }},
	{"fetch.IcacheStallCycles", func(m *Machine) uint64 { return m.C.FetchICacheStalls }},
	{"fetch.SquashCycles", func(m *Machine) uint64 { return m.C.FetchSquashCycles }},
	{"fetch.PendingQuiesceStallCycles", func(m *Machine) uint64 { return m.C.PendingQuiesceStalls }},

	// Decode / rename.
	{"decode.Insts", func(m *Machine) uint64 { return m.C.DecodeInsts }},
	{"decode.BlockedCycles", func(m *Machine) uint64 { return m.C.DecodeBlocked }},
	{"rename.RenamedInsts", func(m *Machine) uint64 { return m.C.RenameInsts }},
	{"rename.Undone", func(m *Machine) uint64 { return m.C.RenameUndone }},
	{"rename.serializingInsts", func(m *Machine) uint64 { return m.C.RenameSerializing }},
	{"rename.FullRegStalls", func(m *Machine) uint64 { return m.C.RenameFullRegs }},
	{"rename.CommittedMaps", func(m *Machine) uint64 { return m.C.CommittedMaps }},

	// Issue queue / execute.
	{"iq.InstsAdded", func(m *Machine) uint64 { return m.C.IQAdded }},
	{"iq.InstsIssued", func(m *Machine) uint64 { return m.C.IQIssued }},
	{"iq.FullStalls", func(m *Machine) uint64 { return m.C.IQFullStalls }},
	{"iq.SquashedInstsExamined", func(m *Machine) uint64 { return m.C.IQSquashedExamined }},
	{"iq.SquashedNonSpecLD", func(m *Machine) uint64 { return m.C.IQSquashedNonSpecLD }},
	{"iq.Conflicts", func(m *Machine) uint64 { return m.C.IQConflicts }},
	{"iew.ExecutedInsts", func(m *Machine) uint64 { return m.C.ExecutedInsts }},
	{"iew.ExecSquashedInsts", func(m *Machine) uint64 { return m.C.ExecSquashedInsts }},
	{"iew.MemOrderViolation", func(m *Machine) uint64 { return m.C.MemOrderViolation }},
	{"iew.BranchMispredicts", func(m *Machine) uint64 { return m.C.BranchMispredicts }},

	// Load/store queue.
	{"lsq.forwLoads", func(m *Machine) uint64 { return m.C.LSQForwLoads }},
	{"lsq.squashedLoads", func(m *Machine) uint64 { return m.C.LSQSquashedLoads }},
	{"lsq.squashedStores", func(m *Machine) uint64 { return m.C.LSQSquashedStores }},
	{"lsq.ignoredResponses", func(m *Machine) uint64 { return m.C.LSQIgnoredResponses }},
	{"lsq.rescheduledLoads", func(m *Machine) uint64 { return m.C.LSQRescheduled }},
	{"lsq.blockedLoads", func(m *Machine) uint64 { return m.C.LSQBlockedLoads }},
	{"lsq.SpecLoadsHitWrQueue", func(m *Machine) uint64 { return m.C.SpecLoadsHitWrQ }},

	// ROB / commit.
	{"rob.FullStalls", func(m *Machine) uint64 { return m.C.ROBFullStalls }},
	{"rob.Reads", func(m *Machine) uint64 { return m.C.ROBReads }},
	{"commit.CommittedInsts", func(m *Machine) uint64 { return m.C.CommitInsts }},
	{"commit.Branches", func(m *Machine) uint64 { return m.C.CommitBranches }},
	{"commit.Loads", func(m *Machine) uint64 { return m.C.CommitLoads }},
	{"commit.Stores", func(m *Machine) uint64 { return m.C.CommitStores }},
	{"commit.Faults", func(m *Machine) uint64 { return m.C.CommitFaults }},
	{"commit.SquashedInsts", func(m *Machine) uint64 { return m.C.CommitSquashed }},

	// Speculation.
	{"spec.InstsAdded", func(m *Machine) uint64 { return m.C.SpecInstsAdded }},
	{"spec.LoadsExecuted", func(m *Machine) uint64 { return m.C.SpecLoadsExecuted }},

	// Fences / serialization / special units.
	{"fence.StallCycles", func(m *Machine) uint64 { return m.C.FenceStallCycles }},
	{"serialize.Drains", func(m *Machine) uint64 { return m.C.SerializeDrains }},
	{"rng.Reads", func(m *Machine) uint64 { return m.C.RdRandReads }},
	{"rng.ContentionCycles", func(m *Machine) uint64 { return m.C.RdRandContention }},
	{"kernel.Syscalls", func(m *Machine) uint64 { return m.C.SyscallCount }},
	{"fetch.QuiesceCycles", func(m *Machine) uint64 { return m.C.QuiesceCycles }},

	// Branch predictor.
	{"branchPred.lookups", func(m *Machine) uint64 { return m.bp.Stats.Lookups }},
	{"branchPred.condPredicted", func(m *Machine) uint64 { return m.bp.Stats.CondPredicted }},
	{"branchPred.condIncorrect", func(m *Machine) uint64 { return m.bp.Stats.CondIncorrect }},
	{"branchPred.BTBLookups", func(m *Machine) uint64 { return m.bp.Stats.BTBLookups }},
	{"branchPred.BTBHits", func(m *Machine) uint64 { return m.bp.Stats.BTBHits }},
	{"branchPred.BTBMispredicts", func(m *Machine) uint64 { return m.bp.Stats.BTBMispredicts }},
	{"branchPred.RASUsed", func(m *Machine) uint64 { return m.bp.Stats.RASUsed }},
	{"branchPred.RASIncorrect", func(m *Machine) uint64 { return m.bp.Stats.RASIncorrect }},
	{"branchPred.RASOverflows", func(m *Machine) uint64 { return m.bp.Stats.RASOverflows }},
	{"branchPred.RASUnderflows", func(m *Machine) uint64 { return m.bp.Stats.RASUnderflows }},
	{"branchPred.usedLocal", func(m *Machine) uint64 { return m.bp.Stats.LocalUsed }},
	{"branchPred.usedGlobal", func(m *Machine) uint64 { return m.bp.Stats.GlobalUsed }},
	{"branchPred.choiceFlips", func(m *Machine) uint64 { return m.bp.Stats.ChoiceFlips }},
	{"branchPred.mistrainAliasing", func(m *Machine) uint64 { return m.bp.Stats.MistrainAliasing }},

	// L1 data cache.
	{"dcache.ReadReq_hits", func(m *Machine) uint64 { return m.l1d.Stats.ReadHits }},
	{"dcache.ReadReq_misses", func(m *Machine) uint64 { return m.l1d.Stats.ReadMisses }},
	{"dcache.WriteReq_hits", func(m *Machine) uint64 { return m.l1d.Stats.WriteHits }},
	{"dcache.WriteReq_misses", func(m *Machine) uint64 { return m.l1d.Stats.WriteMisses }},
	{"dcache.ReadReq_mshr_hits", func(m *Machine) uint64 { return m.l1d.Stats.MSHRHits }},
	{"dcache.ReadReq_mshr_miss_latency", func(m *Machine) uint64 { return m.l1d.Stats.MSHRMissLatency }},
	{"dcache.mshr_full_stalls", func(m *Machine) uint64 { return m.l1d.Stats.MSHRFullStalls }},
	{"dcache.CleanEvicts", func(m *Machine) uint64 { return m.l1d.Stats.CleanEvicts }},
	{"dcache.DirtyEvicts", func(m *Machine) uint64 { return m.l1d.Stats.DirtyEvicts }},
	{"dcache.Flushes", func(m *Machine) uint64 { return m.l1d.Stats.Flushes }},
	{"dcache.FlushMisses", func(m *Machine) uint64 { return m.l1d.Stats.FlushMisses }},
	{"dcache.Prefetches", func(m *Machine) uint64 { return m.l1d.Stats.Prefetches }},
	{"dcache.PrefetchFills", func(m *Machine) uint64 { return m.l1d.Stats.PrefetchFills }},
	{"dcache.WriteBufFull", func(m *Machine) uint64 { return m.l1d.Stats.WriteBufFull }},
	{"dcache.SpecFills", func(m *Machine) uint64 { return m.l1d.Stats.SpecFills }},
	{"dcache.SpecExposes", func(m *Machine) uint64 { return m.l1d.Stats.SpecExposes }},
	{"dcache.SpecSquashed", func(m *Machine) uint64 { return m.l1d.Stats.SpecSquashed }},
	{"dcache.SpecBufHits", func(m *Machine) uint64 { return m.l1d.Stats.SpecBufHits }},
	{"dcache.WritebackReqs", func(m *Machine) uint64 { return m.l1d.Stats.WritebackReqs }},
	{"dcache.InvalidatesRecvd", func(m *Machine) uint64 { return m.l1d.Stats.InvalidatesRecvd }},

	// L1 instruction cache.
	{"icache.ReadReq_hits", func(m *Machine) uint64 { return m.l1i.Stats.ReadHits }},
	{"icache.ReadReq_misses", func(m *Machine) uint64 { return m.l1i.Stats.ReadMisses }},
	{"icache.ReadReq_mshr_hits", func(m *Machine) uint64 { return m.l1i.Stats.MSHRHits }},
	{"icache.CleanEvicts", func(m *Machine) uint64 { return m.l1i.Stats.CleanEvicts }},
	{"icache.mshr_miss_latency", func(m *Machine) uint64 { return m.l1i.Stats.MSHRMissLatency }},

	// Shared L2.
	{"l2.ReadReq_hits", func(m *Machine) uint64 { return m.l2.Stats.ReadHits }},
	{"l2.ReadReq_misses", func(m *Machine) uint64 { return m.l2.Stats.ReadMisses }},
	{"l2.WriteReq_hits", func(m *Machine) uint64 { return m.l2.Stats.WriteHits }},
	{"l2.WriteReq_misses", func(m *Machine) uint64 { return m.l2.Stats.WriteMisses }},
	{"l2.ReadReq_mshr_hits", func(m *Machine) uint64 { return m.l2.Stats.MSHRHits }},
	{"l2.mshr_miss_latency", func(m *Machine) uint64 { return m.l2.Stats.MSHRMissLatency }},
	{"l2.CleanEvicts", func(m *Machine) uint64 { return m.l2.Stats.CleanEvicts }},
	{"l2.DirtyEvicts", func(m *Machine) uint64 { return m.l2.Stats.DirtyEvicts }},
	{"l2.Flushes", func(m *Machine) uint64 { return m.l2.Stats.Flushes }},
	{"l2.WriteBufFull", func(m *Machine) uint64 { return m.l2.Stats.WriteBufFull }},
	{"membus.trans_dist::ReadSharedReq", func(m *Machine) uint64 { return m.l1d.Stats.ReadSharedReqs + m.l1i.Stats.ReadSharedReqs }},
	{"membus.trans_dist::WritebackDirty", func(m *Machine) uint64 { return m.l1d.Stats.WritebackReqs + m.l2.Stats.WritebackReqs }},

	// TLBs.
	{"dtlb.rdHits", func(m *Machine) uint64 { return m.dtlb.Stats.RdHits }},
	{"dtlb.rdMisses", func(m *Machine) uint64 { return m.dtlb.Stats.RdMisses }},
	{"dtlb.wrMisses", func(m *Machine) uint64 { return m.dtlb.Stats.WrMisses }},
	{"dtlb.walks", func(m *Machine) uint64 { return m.dtlb.Stats.Walks }},
	{"dtlb.permFaults", func(m *Machine) uint64 { return m.dtlb.Stats.PermFault }},
	{"itlb.rdMisses", func(m *Machine) uint64 { return m.itlb.Stats.RdMisses }},
	{"itlb.flushes", func(m *Machine) uint64 { return m.itlb.Stats.Flushes }},

	// DRAM.
	{"dram.Reads", func(m *Machine) uint64 { return m.mem.Stats.Reads }},
	{"dram.Writes", func(m *Machine) uint64 { return m.mem.Stats.Writes }},
	{"dram.Activates", func(m *Machine) uint64 { return m.mem.Stats.Activates }},
	{"dram.RowHits", func(m *Machine) uint64 { return m.mem.Stats.RowHits }},
	{"dram.RowConflicts", func(m *Machine) uint64 { return m.mem.Stats.RowConflicts }},
	{"dram.Refreshes", func(m *Machine) uint64 { return m.mem.Stats.Refreshes }},
	{"dram.TRRRefreshes", func(m *Machine) uint64 { return m.mem.Stats.TRRRefreshes }},
	{"dram.bytesRead", func(m *Machine) uint64 { return m.mem.Stats.BytesRead }},
	{"dram.bytesWritten", func(m *Machine) uint64 { return m.mem.Stats.BytesWritten }},
	{"dram.bytesReadWrQ", func(m *Machine) uint64 { return m.mem.Stats.BytesReadWrQ }},
	{"dram.selfRefreshEnergy", func(m *Machine) uint64 { return m.mem.Stats.SelfRefreshTicks }},
}

// catalog is built once from counterDefs.
var catalog = func() *hpc.Catalog {
	names := make([]string, len(counterDefs))
	for i, d := range counterDefs {
		names[i] = d.name
	}
	return hpc.MustCatalog(names)
}()

// CounterCatalog returns the machine's base event catalog (shared by every
// Machine instance; the catalog is static).
func CounterCatalog() *hpc.Catalog { return catalog }

// ReadCounters implements hpc.Source.
func (m *Machine) ReadCounters(out []uint64) {
	for i := range counterDefs {
		out[i] = counterDefs[i].get(m)
	}
}
