package sim

import (
	"container/heap"

	"evax/internal/isa"
)

// Step advances the machine by one cycle. It returns true if any micro-op
// was committed, squashed, resolved or dispatched (progress), which Run
// uses to fast-forward idle stretches.
func (m *Machine) Step() bool {
	if m.done {
		return false
	}
	m.cycle++
	if m.policy != PolicyNone {
		m.C.DefenseActiveCyc++
	}
	m.ctr[CtrROBReads] += uint64(m.ROBOccupancy())
	progress := false
	if m.resolveStage() {
		progress = true
	}
	if m.commitStage() {
		progress = true
	}
	if m.fetchStage() {
		progress = true
	}
	m.applyFlips()
	return progress
}

// Run advances until the program completes or maxInstr instructions commit.
// Idle stretches (everything waiting on a long-latency event) are
// fast-forwarded without per-cycle stepping.
func (m *Machine) Run(maxInstr uint64) {
	for !m.done && m.committed < maxInstr {
		if !m.Step() {
			m.skipAhead()
		}
	}
}

// RunCycles advances by at most n cycles (used by samplers and the adaptive
// controller to interleave detection with execution).
func (m *Machine) RunCycles(n uint64) {
	target := m.cycle + n
	for !m.done && m.cycle < target {
		if !m.Step() {
			m.skipAhead()
		}
	}
}

// skipAhead jumps the clock to the next cycle at which anything can happen.
func (m *Machine) skipAhead() {
	next := ^uint64(0)
	consider := func(c uint64) {
		if c > m.cycle && c < next {
			next = c
		}
	}
	if m.robHead < len(m.rob) {
		consider(m.rob[m.robHead].doneAt + 1)
	}
	if m.pendingRedirect != nil {
		consider(m.pendingRedirect.doneAt)
	}
	consider(m.fetchReadyAt)
	if len(m.iqHeap) > 0 {
		consider(m.iqHeap[0])
	}
	if next == ^uint64(0) || next <= m.cycle+1 {
		return
	}
	delta := next - m.cycle - 1
	m.cycle += delta
	m.ctr[CtrFetchStallCycles] += delta
	m.ctr[CtrROBReads] += delta * uint64(m.ROBOccupancy())
	if m.policy != PolicyNone {
		m.C.DefenseActiveCyc += delta
	}
	if m.quiescing {
		m.ctr[CtrFetchPendingQuiesceStallCycles] += delta
		m.ctr[CtrFetchQuiesceCycles] += delta
	}
}

// resolveStage fires the squash for a resolved right-path misprediction.
func (m *Machine) resolveStage() bool {
	r := m.pendingRedirect
	if r == nil || m.cycle < r.doneAt {
		return false
	}
	m.ctr[CtrIEWBranchMispredicts]++
	// Find the owner's position in the ROB.
	pos := m.findROB(r.seq)
	m.squashYoungerThan(pos)
	m.restoreCheckpoint(r.ckpt)
	m.pendingRedirect = nil
	m.fetchIdx = r.actualNext
	m.fetchReadyAt = m.cycle + m.cfg.SquashPenalty
	m.ctr[CtrFetchSquashCycles] += m.cfg.SquashPenalty
	m.forceLineRefetch()
	return true
}

func (m *Machine) findROB(seq uint64) int {
	for i := m.robHead; i < len(m.rob); i++ {
		if m.rob[i].seq == seq {
			return i
		}
	}
	return len(m.rob) - 1
}

// squashYoungerThan removes every ROB entry younger than position pos,
// unwinding queues and counters.
func (m *Machine) squashYoungerThan(pos int) {
	ownerSeq := m.rob[pos].seq
	for i := len(m.rob) - 1; i > pos; i-- {
		e := &m.rob[i]
		m.ctr[CtrCommitSquashedInsts]++
		m.ctr[CtrIQSquashedInstsExamined]++
		if e.execStart <= m.cycle {
			m.ctr[CtrIEWExecSquashedInsts]++
		}
		if e.isLoad {
			m.lqCount--
			m.ctr[CtrLSQSquashedLoads]++
			if e.fault || e.assistReplay {
				m.ctr[CtrIQSquashedNonSpecLD]++
			}
			if e.fault || e.assistReplay || e.stlViolation {
				m.pendingReplays--
			}
			if e.specLoad {
				m.specBuf.Squash(e.ea)
			}
			if e.didCacheAccess {
				m.C.LeakedTransientLoads++
			}
		}
		if e.isStore {
			m.ctr[CtrLSQSquashedStores]++
		}
		if e.isCtrl {
			m.inFlightCtrl--
		}
		if e.hasDest {
			m.inFlightDests--
			m.ctr[CtrRenameUndone]++
		}
	}
	// Drop squashed stores from the SQ (they are the entries with seq
	// greater than the owner's).
	keep := len(m.sq)
	for keep > 0 && m.sq[keep-1].seq > ownerSeq {
		keep--
	}
	m.sq = m.sq[:keep]
	m.rob = m.rob[:pos+1]
	// Rebuild the issue-queue occupancy heap from surviving entries.
	m.iqHeap = m.iqHeap[:0]
	for i := m.robHead; i < len(m.rob); i++ {
		if m.rob[i].execStart > m.cycle {
			m.iqHeap = append(m.iqHeap, m.rob[i].execStart)
		}
	}
	heap.Init(&m.iqHeap)
	m.recomputeReplayGate()
}

// recomputeReplayGate refreshes the gate after squashes changed the set of
// in-flight replay loads.
func (m *Machine) recomputeReplayGate() {
	if m.pendingReplays == 0 {
		m.replayGate = 0
		return
	}
	gate := ^uint64(0)
	for i := m.robHead; i < len(m.rob); i++ {
		e := &m.rob[i]
		if (e.fault || e.assistReplay || e.stlViolation) && e.squashAtEst < gate {
			gate = e.squashAtEst
		}
	}
	m.replayGate = gate
}

func (m *Machine) forceLineRefetch() { m.lastFetchLine = ^uint64(0) }

// commitStage retires completed micro-ops in order, firing commit-time
// replays (faults, assists, memory-order violations).
func (m *Machine) commitStage() bool {
	progress := false
	if m.cycle < m.commitStallUntil {
		return false
	}
	for n := 0; n < m.cfg.CommitWidth && m.robHead < len(m.rob); n++ {
		e := &m.rob[m.robHead]
		if m.cycle <= e.doneAt {
			break
		}
		if m.pendingRedirect != nil && e.seq == m.pendingRedirect.seq {
			// A mispredicted control op cannot commit before its
			// squash fires in resolveStage.
			break
		}
		progress = true
		m.committed++
		m.ctr[CtrCommitCommittedInsts]++
		replay := e.fault || e.assistReplay || e.stlViolation

		if e.hasDest {
			m.archRegs[e.dest] = e.destValue
			m.ctr[CtrRenameCommittedMaps]++
			m.inFlightDests--
		}
		if e.isLoad {
			m.lqCount--
			m.ctr[CtrCommitLoads]++
			if e.specLoad {
				// Exposure validates the load at its visibility
				// point. Validations are serialized on a single
				// port (half-latency pipelined), so back-to-back
				// speculative loads accumulate commit backpressure
				// — the dominant InvisiSpec-TSO cost.
				lat := m.specBuf.Expose(m.cycle, e.ea)
				stall := lat / 2
				if stall < 3 {
					// Already-exposed lines still pay the TSO
					// validation re-access at the L1 port.
					stall = 3
				}
				m.commitStallUntil = maxu(m.commitStallUntil, m.cycle) + stall
			}
		}
		if e.isStore {
			m.ctr[CtrCommitStores]++
			if len(m.sq) > 0 && m.sq[0].seq == e.seq {
				st := m.sq[0]
				m.sq = m.sq[1:]
				m.memory[st.addr] = st.value
				m.l1d.Access(m.cycle, st.addr, true)
			}
		}
		if e.isCtrl {
			m.ctr[CtrCommitBranches]++
			m.inFlightCtrl--
			m.trainPredictor(e)
		}
		if e.kind == isa.Syscall {
			m.kernelNoise()
		}

		if replay {
			if e.fault {
				m.ctr[CtrCommitFaults]++
			}
			if e.assistReplay {
				m.ctr[CtrLSQIgnoredResponses]++
			}
			if e.stlViolation {
				m.ctr[CtrIEWMemOrderViolation]++
				m.ctr[CtrLSQRescheduledLoads]++
			}
			m.replaySquash(e)
			m.robHead++
			m.compactROB()
			return true
		}
		m.robHead++
	}
	m.compactROB()
	if m.robHead == len(m.rob) && m.fetchIdx >= len(m.prog.Code) &&
		m.pendingRedirect == nil && m.pendingReplays == 0 {
		m.done = true
	}
	return progress
}

// replaySquash discards everything younger than e, restores the checkpoint
// taken before e's transient write, applies the architecturally correct
// value, and redirects fetch past e.
func (m *Machine) replaySquash(e *robEntry) {
	pos := m.findROB(e.seq)
	m.pendingReplays-- // the owner itself
	m.squashYoungerThan(pos)
	if m.pendingRedirect != nil && m.pendingRedirect.seq > e.seq {
		m.pendingRedirect = nil
	}
	m.recomputeReplayGate()
	m.restoreCheckpoint(e.ckpt)
	if e.hasDest {
		m.specWrite(e.dest, e.destValue)
		m.regReady[e.dest] = m.cycle
	}
	m.fetchIdx = e.instIdx + 1
	penalty := m.cfg.SquashPenalty
	if e.fault {
		penalty += 30 // fault handler entry/exit
		m.kernelNoise()
	}
	m.fetchReadyAt = m.cycle + penalty
	m.ctr[CtrFetchSquashCycles] += penalty
	m.forceLineRefetch()
}

// compactROB reclaims committed prefix storage periodically.
func (m *Machine) compactROB() {
	if m.robHead > 4096 || (m.robHead > 0 && m.robHead == len(m.rob)) {
		m.rob = append(m.rob[:0], m.rob[m.robHead:]...)
		m.robHead = 0
	}
}

// kernelNoise models kernel handler activity: a few supervisor-space
// instruction and data accesses plus an ITLB flush — the syscall noise the
// paper notes pollutes attack samples.
func (m *Machine) kernelNoise() {
	base := isa.KernelBase + (m.seq%16)*0x1000
	for i := uint64(0); i < 4; i++ {
		m.l1i.Access(m.cycle+i, base+i*64, false)
	}
	m.l1d.Access(m.cycle+2, base+0x800, false)
	m.itlb.Flush()
}

// trainPredictor updates direction, BTB and RAS statistics for a committed
// control op.
func (m *Machine) trainPredictor(e *robEntry) {
	if e.hasPredDir {
		taken := e.actualNext != e.instIdx+1
		m.bp.UpdateDirection(e.predDir, taken)
	}
	switch e.kind {
	case isa.IndirectJump, isa.Jump, isa.Call:
		m.bp.UpdateTarget(PCOf(e.instIdx), e.actualNext, e.btbPred, e.btbHad)
	case isa.Ret:
		if e.rasUsed {
			m.bp.RecordRASOutcome(e.rasCorrect)
		}
	}
}
