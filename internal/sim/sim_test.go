package sim

import (
	"math/rand"
	"testing"

	"evax/internal/isa"
)

// runBoth executes a program on the pipeline and the golden interpreter and
// compares committed architectural register state.
func runBoth(t *testing.T, p *isa.Program, maxInstr uint64) (*Machine, *isa.Interp) {
	t.Helper()
	m := New(DefaultConfig(), p)
	m.Run(maxInstr)
	it := isa.NewInterp(p)
	if _, err := it.Run(p, maxInstr); err != nil {
		t.Fatalf("interp: %v", err)
	}
	return m, it
}

func checkArchMatch(t *testing.T, m *Machine, it *isa.Interp) {
	t.Helper()
	if !m.Done() {
		t.Fatalf("machine did not finish: %s", m)
	}
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if m.ArchReg(r) != it.Regs[r] {
			t.Errorf("r%d: machine %#x, interp %#x", r, m.ArchReg(r), it.Regs[r])
		}
	}
}

func TestSimpleArithmeticMatchesInterp(t *testing.T) {
	b := isa.NewBuilder("arith", isa.ClassBenign)
	b.Li(isa.R1, 7)
	b.Li(isa.R2, 3)
	b.Add(isa.R3, isa.R1, isa.R2)
	b.Mul(isa.R4, isa.R3, isa.R1)
	b.Div(isa.R5, isa.R4, isa.R2)
	b.Xor(isa.R6, isa.R5, isa.R1)
	p := b.MustBuild()
	m, it := runBoth(t, p, 1000)
	checkArchMatch(t, m, it)
}

func TestLoopMatchesInterp(t *testing.T) {
	b := isa.NewBuilder("sumloop", isa.ClassBenign)
	b.Li(isa.R1, 0)
	b.Li(isa.R2, 1)
	b.Li(isa.R3, 101)
	b.Label("top")
	b.Add(isa.R1, isa.R1, isa.R2)
	b.Addi(isa.R2, isa.R2, 1)
	b.Br(isa.CondNE, isa.R2, isa.R3, "top")
	p := b.MustBuild()
	m, it := runBoth(t, p, 100000)
	checkArchMatch(t, m, it)
	if m.ArchReg(isa.R1) != 5050 {
		t.Fatalf("sum = %d, want 5050", m.ArchReg(isa.R1))
	}
}

func TestLoadStoreMatchesInterp(t *testing.T) {
	b := isa.NewBuilder("memcopy", isa.ClassBenign)
	b.Li(isa.R1, 0x1000) // src
	b.Li(isa.R2, 0x2000) // dst
	b.Li(isa.R3, 0)      // i
	b.Li(isa.R4, 64)     // n
	for i := 0; i < 8; i++ {
		b.InitMem(0x1000+uint64(i)*8, uint64(i*i+1))
	}
	b.Label("top")
	b.Load(isa.R5, isa.R1, isa.R3, 8, 0)
	b.Addi(isa.R5, isa.R5, 10)
	b.Store(isa.R5, isa.R2, isa.R3, 8, 0)
	b.Addi(isa.R3, isa.R3, 1)
	b.Br(isa.CondNE, isa.R3, isa.R4, "top")
	p := b.MustBuild()
	m, it := runBoth(t, p, 100000)
	checkArchMatch(t, m, it)
	for i := uint64(0); i < 8; i++ {
		if got, want := m.MemWord(0x2000+i*8), it.Mem[0x2000+i*8]; got != want {
			t.Errorf("mem[%d]: machine %d, interp %d", i, got, want)
		}
	}
}

func TestCallRetMatchesInterp(t *testing.T) {
	b := isa.NewBuilder("calls", isa.ClassBenign)
	b.Li(isa.R1, 0)
	b.Li(isa.R2, 0)
	b.Li(isa.R3, 20)
	b.Label("loop")
	b.Call("fn")
	b.Addi(isa.R2, isa.R2, 1)
	b.Br(isa.CondNE, isa.R2, isa.R3, "loop")
	b.Jmp("end")
	b.Label("fn")
	b.Addi(isa.R1, isa.R1, 3)
	b.Ret()
	b.Label("end")
	b.Nop()
	p := b.MustBuild()
	m, it := runBoth(t, p, 100000)
	checkArchMatch(t, m, it)
	if m.ArchReg(isa.R1) != 60 {
		t.Fatalf("R1 = %d, want 60", m.ArchReg(isa.R1))
	}
}

func TestStoreForwarding(t *testing.T) {
	b := isa.NewBuilder("fwd", isa.ClassBenign)
	b.Li(isa.R1, 0x3000)
	b.Li(isa.R2, 99)
	b.Store(isa.R2, isa.R1, isa.R0, 0, 0)
	b.Load(isa.R3, isa.R1, isa.R0, 0, 0) // forwarded from SQ
	p := b.MustBuild()
	m, it := runBoth(t, p, 1000)
	checkArchMatch(t, m, it)
	if m.Ctr(CtrLSQForwLoads) == 0 {
		t.Fatal("no store-to-load forwarding recorded")
	}
}

func TestRandomProgramsMatchInterp(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		b := isa.NewBuilder("rand", isa.ClassBenign)
		// Initialize registers with random small values.
		for r := isa.Reg(1); r <= 8; r++ {
			b.InitReg(r, uint64(rng.Intn(100)))
		}
		b.Li(isa.R9, 0x4000)
		// A counted loop around a random straight-line body with
		// forward branches.
		b.Li(isa.R10, 0)
		b.Li(isa.R11, int64(3+rng.Intn(6)))
		b.Label("loop")
		for i := 0; i < 12; i++ {
			switch rng.Intn(6) {
			case 0:
				b.Add(isa.Reg(1+rng.Intn(8)), isa.Reg(1+rng.Intn(8)), isa.Reg(1+rng.Intn(8)))
			case 1:
				b.Mul(isa.Reg(1+rng.Intn(8)), isa.Reg(1+rng.Intn(8)), isa.Reg(1+rng.Intn(8)))
			case 2:
				b.Xor(isa.Reg(1+rng.Intn(8)), isa.Reg(1+rng.Intn(8)), isa.Reg(1+rng.Intn(8)))
			case 3:
				b.Store(isa.Reg(1+rng.Intn(8)), isa.R9, isa.R10, 8, int64(rng.Intn(4)*8))
			case 4:
				b.Load(isa.Reg(1+rng.Intn(8)), isa.R9, isa.R10, 8, int64(rng.Intn(4)*8))
			case 5:
				skip := "skip" + string(rune('a'+i)) + string(rune('0'+trial%10))
				b.Br(isa.CondLT, isa.Reg(1+rng.Intn(8)), isa.Reg(1+rng.Intn(8)), skip)
				b.Addi(isa.Reg(1+rng.Intn(8)), isa.R0, int64(rng.Intn(50)))
				b.Label(skip)
			}
		}
		b.Addi(isa.R10, isa.R10, 1)
		b.Br(isa.CondNE, isa.R10, isa.R11, "loop")
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		m, it := runBoth(t, p, 100000)
		checkArchMatch(t, m, it)
	}
}

func TestILPBeatsDependencyChain(t *testing.T) {
	build := func(dep bool) *isa.Program {
		b := isa.NewBuilder("ilp", isa.ClassBenign)
		for r := isa.Reg(1); r <= 8; r++ {
			b.InitReg(r, uint64(r))
		}
		for i := 0; i < 400; i++ {
			if dep {
				b.Add(isa.R1, isa.R1, isa.R2) // serial chain
			} else {
				b.Add(isa.Reg(1+(i%4)), isa.Reg(1+(i%4)), isa.R5)
			}
		}
		return b.MustBuild()
	}
	mi := New(DefaultConfig(), build(false))
	mi.Run(1_000_000)
	md := New(DefaultConfig(), build(true))
	md.Run(1_000_000)
	if mi.IPC() <= md.IPC() {
		t.Fatalf("independent IPC %.2f not above dependent IPC %.2f", mi.IPC(), md.IPC())
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	b := isa.NewBuilder("tightloop", isa.ClassBenign)
	b.Li(isa.R1, 0)
	b.Li(isa.R2, 2000)
	b.Label("top")
	b.Addi(isa.R1, isa.R1, 1)
	b.Br(isa.CondNE, isa.R1, isa.R2, "top")
	p := b.MustBuild()
	m := New(DefaultConfig(), p)
	m.Run(1_000_000)
	if !m.Done() {
		t.Fatal("loop did not finish")
	}
	// One mispredict at the final iteration plus a few at warmup.
	if m.Ctr(CtrIEWBranchMispredicts) > 20 {
		t.Fatalf("mispredicts = %d, want < 20 for a counted loop", m.Ctr(CtrIEWBranchMispredicts))
	}
}

// spectreGadget builds a canonical Spectre-PHT bounds-check-bypass gadget:
// train a bounds check in-bounds, flush the bound, then supply an
// out-of-bounds index so the wrong path loads probe[secret*stride].
func spectreGadget() (*isa.Program, uint64) {
	const (
		arrBase    = 0x1_0000
		boundAddr  = 0x2_0000
		secretAddr = uint64(arrBase + 100*8) // "out of bounds" target
		probeBase  = 0x8_0000
		stride     = 4096
		secretVal  = 5
	)
	b := isa.NewBuilder("spectre-gadget", isa.ClassSpectrePHT)
	b.InitMem(boundAddr, 16)
	b.InitMem(secretAddr, secretVal)
	b.InitReg(isa.R20, arrBase)
	b.InitReg(isa.R21, boundAddr)
	b.InitReg(isa.R22, probeBase)

	// Warm the secret's line so the wrong-path chain runs fast, and train
	// the branch with in-bounds indices.
	b.SetPhase(isa.PhaseSetup)
	b.Prefetch(isa.R20, isa.R0, 0, 100*8)
	b.Li(isa.R1, 0)
	b.Li(isa.R2, 30)
	b.Label("train")
	b.Load(isa.R3, isa.R21, isa.R0, 0, 0) // bound
	b.Br(isa.CondUGE, isa.R1, isa.R3, "skip1")
	b.Load(isa.R4, isa.R20, isa.R1, 8, 0)
	b.Label("skip1")
	b.Addi(isa.R1, isa.R1, 1)
	b.And(isa.R1, isa.R1, isa.R0) // reset idx to 0 each iteration (in bounds)
	b.Addi(isa.R2, isa.R2, -1)
	b.Br(isa.CondNE, isa.R2, isa.R0, "train")

	// Attack iteration: flush the bound so the check resolves late, then
	// use the out-of-bounds index.
	b.SetPhase(isa.PhaseLeak)
	b.CLFlush(isa.R21, isa.R0, 0, 0)
	b.Li(isa.R1, 100) // out of bounds
	b.Load(isa.R3, isa.R21, isa.R0, 0, 0)
	b.Br(isa.CondUGE, isa.R1, isa.R3, "skip2")
	b.Load(isa.R4, isa.R20, isa.R1, 8, 0)      // reads the secret transiently
	b.Load(isa.R5, isa.R22, isa.R4, stride, 0) // encodes it in the cache
	b.Label("skip2")
	b.SetPhase(isa.PhaseNone)
	b.Nop()
	return b.MustBuild(), probeBase + secretVal*stride
}

func TestSpectreTransientLeak(t *testing.T) {
	p, leakAddr := spectreGadget()
	m := New(DefaultConfig(), p)
	m.Run(1_000_000)
	if !m.Done() {
		t.Fatal("gadget did not finish")
	}
	if !m.L1D().Present(leakAddr) {
		t.Fatal("wrong-path load left no cache footprint: Spectre window not modelled")
	}
	if m.C.LeakedTransientLoads == 0 {
		t.Fatal("transient leak not counted")
	}
	// The out-of-bounds access must never commit architecturally.
	if m.ArchReg(isa.R4) == 5 {
		t.Fatal("secret committed architecturally")
	}
}

func TestFenceAfterBranchStopsSpectre(t *testing.T) {
	p, leakAddr := spectreGadget()
	m := New(DefaultConfig(), p)
	m.SetPolicy(PolicyFenceAfterBranch)
	m.Run(1_000_000)
	if m.L1D().Present(leakAddr) {
		t.Fatal("fence-after-branch failed to stop the transient leak")
	}
}

func TestInvisiSpecStopsSpectre(t *testing.T) {
	p, leakAddr := spectreGadget()
	m := New(DefaultConfig(), p)
	m.SetPolicy(PolicyInvisiSpecSpectre)
	m.Run(1_000_000)
	if m.L1D().Present(leakAddr) || m.L2().Present(leakAddr) {
		t.Fatal("InvisiSpec failed: squashed speculative load left cache state")
	}
	if m.L1D().Stats.SpecSquashed == 0 {
		t.Fatal("no speculative-buffer squashes recorded")
	}
}

// meltdownGadget: delay retirement with a flushed load, read a kernel
// address, and encode the transient value in the cache.
func meltdownGadget() (*isa.Program, uint64) {
	const (
		probeBase = 0x8_0000
		stride    = 4096
		slowAddr  = 0x5_0000
		secretVal = 3
	)
	kAddr := isa.KernelBase + 0x1000
	b := isa.NewBuilder("meltdown-gadget", isa.ClassMeltdown)
	b.InitMem(kAddr, secretVal)
	b.InitReg(isa.R20, probeBase)
	b.InitReg(isa.R21, slowAddr)
	b.InitReg(isa.R22, kAddr)

	b.SetPhase(isa.PhaseSetup)
	b.Prefetch(isa.R22, isa.R0, 0, 0) // kernel line cached (syscall preload)
	b.CLFlush(isa.R21, isa.R0, 0, 0)  // retirement delayed by slow older load

	b.SetPhase(isa.PhaseLeak)
	b.Load(isa.R9, isa.R21, isa.R0, 0, 0)      // slow: blocks retirement
	b.LoadK(isa.R4, isa.R22, isa.R0, 0, 0)     // faulting kernel load
	b.Load(isa.R5, isa.R20, isa.R4, stride, 0) // transient encode
	b.SetPhase(isa.PhaseNone)
	b.Nop()
	return b.MustBuild(), probeBase + secretVal*stride
}

func TestMeltdownTransientLeak(t *testing.T) {
	p, leakAddr := meltdownGadget()
	m := New(DefaultConfig(), p)
	m.Run(1_000_000)
	if !m.Done() {
		t.Fatal("gadget did not finish")
	}
	if !m.L1D().Present(leakAddr) {
		t.Fatal("Meltdown window not modelled: no transient cache footprint")
	}
	if m.Ctr(CtrCommitFaults) != 1 {
		t.Fatalf("commit faults = %d, want 1", m.Ctr(CtrCommitFaults))
	}
	if m.ArchReg(isa.R4) != 0 {
		t.Fatalf("faulting load committed %d, want 0", m.ArchReg(isa.R4))
	}
}

func TestFenceBeforeLoadStopsMeltdown(t *testing.T) {
	p, leakAddr := meltdownGadget()
	m := New(DefaultConfig(), p)
	m.SetPolicy(PolicyFenceBeforeLoad)
	m.Run(1_000_000)
	if m.L1D().Present(leakAddr) {
		t.Fatal("fence-before-load failed to close the Meltdown window")
	}
	if m.ArchReg(isa.R4) != 0 {
		t.Fatalf("faulting load committed %d, want 0", m.ArchReg(isa.R4))
	}
}

func TestInvisiSpecFuturisticStopsMeltdown(t *testing.T) {
	p, leakAddr := meltdownGadget()
	m := New(DefaultConfig(), p)
	m.SetPolicy(PolicyInvisiSpecFuturistic)
	m.Run(1_000_000)
	if m.L1D().Present(leakAddr) {
		t.Fatal("InvisiSpec (futuristic) failed to hide the transient load")
	}
}

func TestSpectreSTLViolation(t *testing.T) {
	// A store whose data arrives late; the following load to the same
	// address bypasses it speculatively and reads stale memory.
	b := isa.NewBuilder("stl", isa.ClassSpectreSTL)
	addr := uint64(0x6000)
	b.InitMem(addr, 111) // stale value
	b.InitReg(isa.R1, addr)
	b.InitReg(isa.R2, 48) // 48/7/7 -> 0, so R1+R4*8 == addr
	b.InitReg(isa.R3, 7)
	b.InitReg(isa.R7, 222)
	// Slow chain computing the store *address* offset (resolves to 0).
	b.Div(isa.R4, isa.R2, isa.R3)
	b.Div(isa.R4, isa.R4, isa.R3)
	b.Store(isa.R7, isa.R1, isa.R4, 8, 0) // address unresolved when load issues
	b.Load(isa.R5, isa.R1, isa.R0, 0, 0)  // bypasses -> stale 111 transiently
	b.Addi(isa.R6, isa.R5, 0)
	p := b.MustBuild()
	m, it := runBoth(t, p, 10000)
	checkArchMatch(t, m, it)
	if m.Ctr(CtrIEWMemOrderViolation) != 1 {
		t.Fatalf("memory-order violations = %d, want 1", m.Ctr(CtrIEWMemOrderViolation))
	}
	if m.ArchReg(isa.R5) != 222 {
		t.Fatalf("replayed load committed %d, want 222", m.ArchReg(isa.R5))
	}
}

func TestAssistLoadInjection(t *testing.T) {
	// LVI-style: a NoFwd load transiently receives a 4K-aliasing store's
	// value; the architectural result is the true memory value.
	const (
		probeBase = 0x8_0000
		stride    = 4096
	)
	b := isa.NewBuilder("lvi", isa.ClassLVI)
	victim := uint64(0x7008)
	alias := victim + 0x3000 // same low 12 bits
	b.InitMem(victim, 1)     // true value
	b.InitReg(isa.R1, victim)
	b.InitReg(isa.R2, alias)
	b.InitReg(isa.R20, probeBase)
	b.Li(isa.R3, 6) // injected "poison"
	b.Store(isa.R3, isa.R2, isa.R0, 0, 0)
	b.LoadAssist(isa.R4, isa.R1, isa.R0, 0, 0) // transiently gets 6
	b.Load(isa.R5, isa.R20, isa.R4, stride, 0) // leaks the poison
	p := b.MustBuild()
	m := New(DefaultConfig(), p)
	m.Run(1_000_000)
	if !m.Done() {
		t.Fatal("did not finish")
	}
	if m.ArchReg(isa.R4) != 1 {
		t.Fatalf("assist load committed %d, want 1 (true value)", m.ArchReg(isa.R4))
	}
	if m.Ctr(CtrLSQIgnoredResponses) != 1 {
		t.Fatalf("ignored responses = %d, want 1", m.Ctr(CtrLSQIgnoredResponses))
	}
	if !m.L1D().Present(probeBase + 6*stride) {
		t.Fatal("injected value left no transient footprint")
	}
}

func TestDefenseOverheadOrdering(t *testing.T) {
	// A benign pointer-chasing loop: fencing must cost cycles, and
	// fence-before-load must cost more than fence-after-branch.
	build := func() *isa.Program {
		b := isa.NewBuilder("bench", isa.ClassBenign)
		b.Li(isa.R1, 0)
		b.Li(isa.R2, 300)
		b.Li(isa.R3, 0x9000)
		b.Li(isa.R6, 1_000_000) // sentinel never matched
		b.Label("top")
		// A load-rich body: one data-dependent branch keeps some loads
		// speculative; the independent loads expose the serialization
		// cost of fence-before-load.
		b.Load(isa.R4, isa.R3, isa.R1, 64, 0)
		b.Br(isa.CondEQ, isa.R4, isa.R6, "top")
		b.Load(isa.R7, isa.R3, isa.R1, 64, 8)
		b.Load(isa.R8, isa.R3, isa.R1, 64, 16)
		b.Load(isa.R9, isa.R3, isa.R1, 64, 24)
		b.Add(isa.R5, isa.R5, isa.R4)
		b.Add(isa.R5, isa.R5, isa.R7)
		b.Add(isa.R5, isa.R5, isa.R8)
		b.Add(isa.R5, isa.R5, isa.R9)
		b.Addi(isa.R1, isa.R1, 1)
		b.Br(isa.CondNE, isa.R1, isa.R2, "top")
		return b.MustBuild()
	}
	cycles := func(pol Policy) uint64 {
		m := New(DefaultConfig(), build())
		m.SetPolicy(pol)
		m.Run(1_000_000)
		if !m.Done() {
			t.Fatal("did not finish")
		}
		return m.Cycles()
	}
	none := cycles(PolicyNone)
	fab := cycles(PolicyFenceAfterBranch)
	fbl := cycles(PolicyFenceBeforeLoad)
	ivs := cycles(PolicyInvisiSpecSpectre)
	if fab <= none {
		t.Fatalf("fence-after-branch (%d) not slower than none (%d)", fab, none)
	}
	if fbl <= fab {
		t.Fatalf("fence-before-load (%d) not slower than fence-after-branch (%d)", fbl, fab)
	}
	if ivs <= none {
		t.Fatalf("invisispec (%d) not slower than none (%d)", ivs, none)
	}
	if ivs >= fab {
		t.Fatalf("invisispec (%d) should cost less than fencing (%d)", ivs, fab)
	}
}

func TestCountersAlignWithCatalog(t *testing.T) {
	cat := CounterCatalog()
	if cat.Len() != int(NumCounters) {
		t.Fatalf("catalog %d != NumCounters %d", cat.Len(), NumCounters)
	}
	for id := CtrID(0); id < NumCounters; id++ {
		if name := id.Name(); cat.MustIndex(name) != int(id) {
			t.Fatalf("catalog index for %q = %d, want %d", name, cat.MustIndex(name), id)
		}
	}
	p, _ := spectreGadget()
	m := New(DefaultConfig(), p)
	before := make([]uint64, cat.Len())
	m.ReadCounters(before)
	m.Run(1_000_000)
	after := make([]uint64, cat.Len())
	m.ReadCounters(after)
	nonzero := 0
	for i := range after {
		if after[i] < before[i] {
			t.Errorf("counter %s decreased: %d -> %d", cat.Name(i), before[i], after[i])
		}
		if after[i] > 0 {
			nonzero++
		}
	}
	if nonzero < 40 {
		t.Fatalf("only %d counters fired; expected a rich event mix", nonzero)
	}
}

func TestRunMaxInstrCap(t *testing.T) {
	b := isa.NewBuilder("inf", isa.ClassBenign)
	b.Label("top")
	b.Addi(isa.R1, isa.R1, 1)
	b.Jmp("top")
	p := b.MustBuild()
	m := New(DefaultConfig(), p)
	m.Run(5000)
	if m.Done() {
		t.Fatal("infinite loop reported done")
	}
	if m.Instructions() < 5000 {
		t.Fatalf("committed %d < 5000", m.Instructions())
	}
}

func TestPhaseAttribution(t *testing.T) {
	p, _ := spectreGadget()
	m := New(DefaultConfig(), p)
	m.Run(1_000_000)
	ph := m.PhaseDispatched()
	if ph[isa.PhaseSetup] == 0 || ph[isa.PhaseLeak] == 0 {
		t.Fatalf("phase histogram missing entries: %v", ph)
	}
}

func TestSyscallSerializesAndAddsNoise(t *testing.T) {
	b := isa.NewBuilder("sys", isa.ClassBenign)
	b.Li(isa.R1, 1)
	b.Syscall()
	b.Li(isa.R2, 2)
	p := b.MustBuild()
	m := New(DefaultConfig(), p)
	m.Run(1000)
	if !m.Done() {
		t.Fatal("did not finish")
	}
	if m.Ctr(CtrKernelSyscalls) != 1 || m.Ctr(CtrSerializeDrains) != 1 {
		t.Fatalf("syscall counters: %+v", m.C)
	}
	if m.itlb.Stats.Flushes == 0 {
		t.Fatal("syscall did not flush ITLB")
	}
}

func TestQuiesceDrains(t *testing.T) {
	b := isa.NewBuilder("quiesce", isa.ClassBenign)
	b.Li(isa.R1, 0x9100)
	b.CLFlush(isa.R1, isa.R0, 0, 0)
	b.Load(isa.R2, isa.R1, isa.R0, 0, 0) // slow DRAM load
	b.Quiesce()
	b.Li(isa.R3, 7)
	p := b.MustBuild()
	m := New(DefaultConfig(), p)
	m.Run(1000)
	if !m.Done() {
		t.Fatal("did not finish")
	}
	if m.Ctr(CtrFetchPendingQuiesceStallCycles) == 0 {
		t.Fatal("quiesce produced no stall cycles")
	}
	if m.ArchReg(isa.R3) != 7 {
		t.Fatal("post-quiesce instruction lost")
	}
}

func TestRdRandContention(t *testing.T) {
	b := isa.NewBuilder("rng", isa.ClassRDRANDCovert)
	for i := 0; i < 8; i++ {
		b.RdRand(isa.Reg(1 + i))
	}
	p := b.MustBuild()
	m := New(DefaultConfig(), p)
	m.Run(10000)
	if m.Ctr(CtrRNGReads) != 8 {
		t.Fatalf("rdrand reads = %d, want 8", m.Ctr(CtrRNGReads))
	}
	if m.Ctr(CtrRNGContentionCycles) == 0 {
		t.Fatal("back-to-back RDRAND showed no unit contention")
	}
}

func TestAdaptivePolicySwitchCounted(t *testing.T) {
	p, _ := spectreGadget()
	m := New(DefaultConfig(), p)
	m.SetPolicy(PolicyFenceAfterBranch)
	m.SetPolicy(PolicyNone)
	m.SetPolicy(PolicyNone) // no-op
	if m.C.DefenseSwitches != 2 {
		t.Fatalf("switches = %d, want 2", m.C.DefenseSwitches)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, [6]uint64) {
		p, _ := spectreGadget()
		m := New(DefaultConfig(), p)
		m.Run(1_000_000)
		return m.Cycles(), m.Instructions(), m.PhaseDispatched()
	}
	c1, i1, p1 := run()
	c2, i2, p2 := run()
	if c1 != c2 || i1 != i2 || p1 != p2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, i1, c2, i2)
	}
}
