package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindPredicates(t *testing.T) {
	memKinds := map[Kind]bool{Load: true, Store: true, CLFlush: true, Prefetch: true}
	ctrlKinds := map[Kind]bool{Branch: true, Jump: true, IndirectJump: true, Call: true, Ret: true}
	serKinds := map[Kind]bool{Syscall: true, Serialize: true, Quiesce: true}
	for k := Kind(0); k < numKinds; k++ {
		if got := k.IsMem(); got != memKinds[k] {
			t.Errorf("%v.IsMem() = %v, want %v", k, got, memKinds[k])
		}
		if got := k.IsCtrl(); got != ctrlKinds[k] {
			t.Errorf("%v.IsCtrl() = %v, want %v", k, got, ctrlKinds[k])
		}
		if got := k.IsSerializing(); got != serKinds[k] {
			t.Errorf("%v.IsSerializing() = %v, want %v", k, got, serKinds[k])
		}
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}

func TestCondEval(t *testing.T) {
	tests := []struct {
		c    Cond
		a, b uint64
		want bool
	}{
		{CondEQ, 5, 5, true},
		{CondEQ, 5, 6, false},
		{CondNE, 5, 6, true},
		{CondNE, 5, 5, false},
		{CondLT, ^uint64(0), 1, true}, // -1 < 1 signed
		{CondLT, 1, 2, true},
		{CondLT, 2, 1, false},
		{CondGE, 2, 2, true},
		{CondGE, 1, 2, false},
		{CondULT, ^uint64(0), 1, false}, // max uint not < 1 unsigned
		{CondULT, 1, 2, true},
		{CondUGE, ^uint64(0), 1, true},
		{CondUGE, 0, 1, false},
	}
	for _, tc := range tests {
		if got := tc.c.Eval(tc.a, tc.b); got != tc.want {
			t.Errorf("%v.Eval(%d,%d) = %v, want %v", tc.c, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCondEvalComplementary(t *testing.T) {
	// EQ/NE, LT/GE, ULT/UGE must be exact complements for all inputs.
	f := func(a, b uint64) bool {
		return CondEQ.Eval(a, b) != CondNE.Eval(a, b) &&
			CondLT.Eval(a, b) != CondGE.Eval(a, b) &&
			CondULT.Eval(a, b) != CondUGE.Eval(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuilderLabelsResolve(t *testing.T) {
	b := NewBuilder("loop", ClassBenign)
	b.Li(R1, 10)
	b.Li(R2, 0)
	b.Label("top")
	b.Addi(R2, R2, 1)
	b.Br(CondNE, R2, R1, "top")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	br := p.Code[3]
	if br.Kind != Branch || br.Target != 2 {
		t.Fatalf("branch = %+v, want target 2", br)
	}
}

func TestBuilderForwardLabel(t *testing.T) {
	b := NewBuilder("fwd", ClassBenign)
	b.Li(R1, 1)
	b.Br(CondEQ, R1, R1, "end")
	b.Li(R2, 99)
	b.Label("end")
	b.Nop()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Target != 3 {
		t.Fatalf("forward branch target = %d, want 3", p.Code[1].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad", ClassBenign)
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for undefined label")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup", ClassBenign)
	b.Label("x")
	b.Nop()
	b.Label("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for duplicate label")
	}
}

func TestBuilderPhaseTagging(t *testing.T) {
	b := NewBuilder("phases", ClassMeltdown)
	b.SetPhase(PhaseSetup)
	b.Nop()
	b.SetPhase(PhaseLeak)
	b.Nop()
	b.SetPhase(PhaseTransmit)
	b.Nop()
	p := b.MustBuild()
	want := []Phase{PhaseSetup, PhaseLeak, PhaseTransmit}
	for i, w := range want {
		if p.Code[i].Phase != w {
			t.Errorf("inst %d phase = %v, want %v", i, p.Code[i].Phase, w)
		}
	}
}

func TestValidateRejectsBadTarget(t *testing.T) {
	p := &Program{Name: "bad", Code: []Inst{{Kind: Jump, Target: 5}}}
	if err := p.Validate(); err == nil {
		t.Fatal("expected out-of-range target error")
	}
}

func TestInterpArithmetic(t *testing.T) {
	b := NewBuilder("arith", ClassBenign)
	b.Li(R1, 7)
	b.Li(R2, 3)
	b.Add(R3, R1, R2)  // 10
	b.Sub(R4, R1, R2)  // 4
	b.Mul(R5, R1, R2)  // 21
	b.Div(R6, R1, R2)  // 2
	b.Xor(R7, R1, R2)  // 4
	b.Shli(R8, R2, 4)  // 48
	b.Shri(R9, R1, 1)  // 3
	b.And(R10, R1, R2) // 3
	p := b.MustBuild()
	it := NewInterp(p)
	if _, err := it.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	want := map[Reg]uint64{R3: 10, R4: 4, R5: 21, R6: 2, R7: 4, R8: 48, R9: 3, R10: 3}
	for r, w := range want {
		if it.Regs[r] != w {
			t.Errorf("r%d = %d, want %d", r, it.Regs[r], w)
		}
	}
}

func TestInterpZeroRegister(t *testing.T) {
	b := NewBuilder("zero", ClassBenign)
	b.Li(R0, 42) // write to R0 is discarded
	b.Mov(R1, R0)
	p := b.MustBuild()
	it := NewInterp(p)
	if _, err := it.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if it.Regs[R1] != 0 {
		t.Fatalf("R1 = %d, want 0 (R0 hard-wired)", it.Regs[R1])
	}
}

func TestInterpLoadStore(t *testing.T) {
	b := NewBuilder("mem", ClassBenign)
	b.Li(R1, 0x1000)
	b.Li(R2, 0xDEAD)
	b.Store(R2, R1, R0, 0, 8)
	b.Load(R3, R1, R0, 0, 8)
	p := b.MustBuild()
	it := NewInterp(p)
	if _, err := it.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if it.Regs[R3] != 0xDEAD {
		t.Fatalf("loaded %#x, want 0xDEAD", it.Regs[R3])
	}
}

func TestInterpScaledAddressing(t *testing.T) {
	b := NewBuilder("scaled", ClassBenign)
	b.InitMem(0x1000+5*64, 77)
	b.Li(R1, 0x1000)
	b.Li(R2, 5)
	b.Load(R3, R1, R2, 64, 0)
	p := b.MustBuild()
	it := NewInterp(p)
	if _, err := it.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if it.Regs[R3] != 77 {
		t.Fatalf("scaled load = %d, want 77", it.Regs[R3])
	}
}

func TestInterpKernelFault(t *testing.T) {
	b := NewBuilder("fault", ClassMeltdown)
	b.Li(R1, 123)
	b.InitReg(R5, KernelBase+0x40)
	b.Load(R1, R5, R0, 0, 0) // faulting kernel load: R1 zeroed
	p := b.MustBuild()
	it := NewInterp(p)
	if _, err := it.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if it.Faults != 1 {
		t.Fatalf("faults = %d, want 1", it.Faults)
	}
	if it.Regs[R1] != 0 {
		t.Fatalf("faulting load delivered %d, want 0", it.Regs[R1])
	}
}

func TestInterpLoop(t *testing.T) {
	b := NewBuilder("sumloop", ClassBenign)
	b.Li(R1, 0)  // sum
	b.Li(R2, 1)  // i
	b.Li(R3, 11) // bound
	b.Label("top")
	b.Add(R1, R1, R2)
	b.Addi(R2, R2, 1)
	b.Br(CondNE, R2, R3, "top")
	p := b.MustBuild()
	it := NewInterp(p)
	if _, err := it.Run(p, 10000); err != nil {
		t.Fatal(err)
	}
	if it.Regs[R1] != 55 {
		t.Fatalf("sum 1..10 = %d, want 55", it.Regs[R1])
	}
}

func TestInterpCallRet(t *testing.T) {
	b := NewBuilder("callret", ClassBenign)
	b.Li(R1, 1)
	b.Call("fn")
	b.Addi(R1, R1, 100) // after return
	b.Jmp("end")
	b.Label("fn")
	b.Addi(R1, R1, 10)
	b.Ret()
	b.Label("end")
	b.Nop()
	p := b.MustBuild()
	it := NewInterp(p)
	if _, err := it.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if it.Regs[R1] != 111 {
		t.Fatalf("R1 = %d, want 111", it.Regs[R1])
	}
}

func TestInterpRetEmptyStackTerminates(t *testing.T) {
	b := NewBuilder("ret-term", ClassBenign)
	b.Li(R1, 5)
	b.Ret()
	b.Li(R1, 9) // unreachable
	p := b.MustBuild()
	it := NewInterp(p)
	if _, err := it.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if it.Regs[R1] != 5 {
		t.Fatalf("R1 = %d, want 5 (ret should terminate)", it.Regs[R1])
	}
}

func TestInterpIndirectJump(t *testing.T) {
	b := NewBuilder("ijmp", ClassBenign)
	b.Li(R1, 4) // jump to index 4
	b.IJmp(R1)
	b.Li(R2, 1) // skipped
	b.Li(R2, 2) // skipped
	b.Li(R2, 3) // index 4
	p := b.MustBuild()
	it := NewInterp(p)
	if _, err := it.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if it.Regs[R2] != 3 {
		t.Fatalf("R2 = %d, want 3", it.Regs[R2])
	}
}

func TestInterpRdTSCMonotonic(t *testing.T) {
	b := NewBuilder("tsc", ClassBenign)
	b.RdTSC(R1)
	b.RdTSC(R2)
	p := b.MustBuild()
	it := NewInterp(p)
	if _, err := it.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if it.Regs[R2] <= it.Regs[R1] {
		t.Fatalf("tsc not monotonic: %d then %d", it.Regs[R1], it.Regs[R2])
	}
}

func TestInterpRdRandDeterministicNonZero(t *testing.T) {
	b := NewBuilder("rng", ClassBenign)
	b.RdRand(R1)
	b.RdRand(R2)
	p := b.MustBuild()
	run := func() (uint64, uint64) {
		it := NewInterp(p)
		if _, err := it.Run(p, 100); err != nil {
			t.Fatal(err)
		}
		return it.Regs[R1], it.Regs[R2]
	}
	a1, a2 := run()
	b1, b2 := run()
	if a1 != b1 || a2 != b2 {
		t.Fatal("rdrand not deterministic across runs")
	}
	if a1 == 0 || a2 == 0 {
		t.Fatal("rdrand returned zero")
	}
}

func TestInterpMaxSteps(t *testing.T) {
	b := NewBuilder("inf", ClassBenign)
	b.Label("top")
	b.Jmp("top")
	p := b.MustBuild()
	it := NewInterp(p)
	n, err := it.Run(p, 500)
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("steps = %d, want 500", n)
	}
}

func TestAluResultMatchesInterp(t *testing.T) {
	// Property: the exported AluResult agrees with interpreter execution.
	rng := rand.New(rand.NewSource(1))
	ops := []AluOp{OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpDiv}
	for i := 0; i < 200; i++ {
		op := ops[rng.Intn(len(ops))]
		a, bv := rng.Uint64(), rng.Uint64()%16
		imm := int64(rng.Intn(8))
		b := NewBuilder("prop", ClassBenign)
		b.InitReg(R1, a)
		b.InitReg(R2, bv)
		b.Alu(op, R3, R1, R2, imm)
		p := b.MustBuild()
		it := NewInterp(p)
		if _, err := it.Run(p, 10); err != nil {
			t.Fatal(err)
		}
		if want := AluResult(op, a, bv, imm); it.Regs[R3] != want {
			t.Fatalf("op %d: interp %d != AluResult %d", op, it.Regs[R3], want)
		}
	}
}

func TestClassNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); c < NumClasses; c++ {
		name := c.String()
		if name == "" || seen[name] {
			t.Errorf("class %d: bad or duplicate name %q", c, name)
		}
		seen[name] = true
		if c == ClassBenign && c.Malicious() {
			t.Error("benign class reported malicious")
		}
		if c != ClassBenign && !c.Malicious() {
			t.Errorf("%v not reported malicious", c)
		}
	}
	if NumAttackClasses != int(NumClasses)-1 {
		t.Fatalf("NumAttackClasses = %d, want %d", NumAttackClasses, int(NumClasses)-1)
	}
}

func TestInstString(t *testing.T) {
	// Smoke test: String must not panic and must be non-empty for all kinds.
	for k := Kind(0); k < numKinds; k++ {
		in := Inst{Kind: k}
		if in.String() == "" {
			t.Errorf("empty String() for kind %v", k)
		}
	}
}
