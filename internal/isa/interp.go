package isa

import "fmt"

// KernelBase is the lowest address of supervisor memory. User-mode loads at
// or above it fault architecturally (they still execute transiently in the
// pipeline model).
const KernelBase uint64 = 0xFFFF_8000_0000_0000

// Interp is the functional (architectural) interpreter: the golden model the
// out-of-order pipeline must agree with on committed state. It executes
// in-order with no timing; faulting kernel loads deliver zero and continue
// (matching the pipeline's committed-state behaviour where the fault is
// suppressed/handled and the destination is architecturally zeroed).
type Interp struct {
	Regs  [NumRegs]uint64
	Mem   map[uint64]uint64
	ras   []int
	tsc   uint64
	rng   uint64
	Steps uint64
	// Faults counts kernel-access faults delivered at commit.
	Faults uint64
}

// NewInterp creates an interpreter with the program's initial state loaded.
func NewInterp(p *Program) *Interp {
	it := &Interp{Mem: make(map[uint64]uint64, len(p.InitMem))}
	for r, v := range p.InitRegs {
		it.Regs[r] = v
	}
	for a, v := range p.InitMem {
		it.Mem[a] = v
	}
	return it
}

func (it *Interp) read(r Reg) uint64 {
	if r == R0 {
		return 0
	}
	return it.Regs[r]
}

func (it *Interp) write(r Reg, v uint64) {
	if r != R0 {
		it.Regs[r] = v
	}
}

// alu computes the ALU result for an instruction.
func alu(op AluOp, a, b uint64, imm int64) uint64 {
	switch op {
	case OpAdd:
		return a + b + uint64(imm)
	case OpSub:
		return a - b + uint64(imm)
	case OpAnd:
		if imm != 0 {
			return a & b & uint64(imm)
		}
		return a & b
	case OpOr:
		return a | b | uint64(imm)
	case OpXor:
		return a ^ b ^ uint64(imm)
	case OpShl:
		return a << ((b + uint64(imm)) & 63)
	case OpShr:
		return a >> ((b + uint64(imm)) & 63)
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	}
	return 0
}

// AluResult exposes the ALU function for the pipeline's execute stage.
func AluResult(op AluOp, a, b uint64, imm int64) uint64 { return alu(op, a, b, imm) }

// Run executes the program from index 0 until it falls off the end or
// maxSteps instructions have committed. It returns the number of committed
// instructions.
func (it *Interp) Run(p *Program, maxSteps uint64) (uint64, error) {
	pc := 0
	for it.Steps < maxSteps && pc >= 0 && pc < len(p.Code) {
		next, err := it.Step(p, pc)
		if err != nil {
			return it.Steps, err
		}
		pc = next
	}
	return it.Steps, nil
}

// Step executes the instruction at pc and returns the next pc.
func (it *Interp) Step(p *Program, pc int) (int, error) {
	in := &p.Code[pc]
	it.Steps++
	it.tsc += 3 // nominal cost; architectural value only needs monotonicity
	next := pc + 1
	switch in.Kind {
	case Nop, Fence, LFence, Serialize, Quiesce, Syscall:
		// no architectural effect in this model
	case IntAlu, IntMult, IntDiv, FloatAlu:
		it.write(in.Dest, alu(in.Alu, it.read(in.Src1), it.read(in.Src2), in.Imm))
	case Load:
		ea := in.EA(it.read)
		if in.Kernel || ea >= KernelBase {
			// Architectural fault: value suppressed, handler zeroes dest.
			it.Faults++
			it.write(in.Dest, 0)
		} else {
			it.write(in.Dest, it.Mem[ea&^7])
		}
	case Store:
		ea := in.EA(it.read)
		if ea < KernelBase {
			it.Mem[ea&^7] = it.read(in.Src1)
		} else {
			it.Faults++
		}
	case CLFlush, Prefetch:
		// cache-state only; no architectural effect
	case RdTSC:
		it.write(in.Dest, it.tsc)
	case RdRand:
		// xorshift64: deterministic architectural RNG
		it.rng ^= it.rng << 13
		it.rng ^= it.rng >> 7
		it.rng ^= it.rng << 17
		if it.rng == 0 {
			it.rng = 0x9E3779B97F4A7C15
		}
		it.write(in.Dest, it.rng)
	case Branch:
		if in.Cond.Eval(it.read(in.Src1), it.read(in.Src2)) {
			next = in.Target
		}
	case Jump:
		next = in.Target
	case IndirectJump:
		next = int(it.read(in.Src1))
		if next < 0 || next > len(p.Code) {
			return 0, fmt.Errorf("%s: ijmp at %d to out-of-range %d", p.Name, pc, next)
		}
	case Call:
		it.ras = append(it.ras, pc+1)
		next = in.Target
	case Ret:
		if len(it.ras) == 0 {
			// Return with empty stack terminates the program.
			return len(p.Code), nil
		}
		next = it.ras[len(it.ras)-1]
		it.ras = it.ras[:len(it.ras)-1]
	default:
		return 0, fmt.Errorf("%s: unknown kind %d at %d", p.Name, in.Kind, pc)
	}
	return next, nil
}
