// Package isa defines the micro-op instruction set consumed by the
// cycle-level simulator in internal/sim.
//
// Programs are straight-line slices of Inst with branch targets resolved to
// instruction indices. A small functional interpreter (Interp) provides the
// golden architectural semantics against which the out-of-order pipeline is
// validated: both must commit the same architectural state.
//
// The ISA is deliberately RISC-like — one memory operand per instruction,
// register+register*scale+immediate addressing — but includes the x86-flavoured
// operations microarchitectural attacks depend on: CLFLUSH, LFENCE/MFENCE,
// PREFETCH, RDTSC, RDRAND and SYSCALL.
package isa

import "fmt"

// Reg names an architectural register. R0 is hard-wired to zero; writes to it
// are discarded. There are 32 integer registers.
type Reg uint8

// Architectural register file size.
const NumRegs = 32

// Named registers. R0 is the zero register; RSP is used by Call/Ret only
// implicitly (the RAS models the return stack; architecturally Call pushes
// the return index to an internal stack in the interpreter and pipeline).
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31
)

// Kind enumerates micro-op classes. Each class maps to an execution unit and
// latency in the pipeline model.
type Kind uint8

const (
	// Nop does nothing but occupies pipeline slots.
	Nop Kind = iota
	// IntAlu is a single-cycle integer operation (add/sub/logic/compare).
	IntAlu
	// IntMult is a pipelined integer multiply.
	IntMult
	// IntDiv is an unpipelined integer divide.
	IntDiv
	// FloatAlu is a floating-point add/mul (modelled on the FP unit).
	FloatAlu
	// Load reads 8 bytes from memory at EA.
	Load
	// Store writes 8 bytes to memory at EA.
	Store
	// Branch is a conditional direct branch.
	Branch
	// Jump is an unconditional direct jump.
	Jump
	// IndirectJump jumps to the address held in Src1 (BTB-predicted).
	IndirectJump
	// Call is a direct call; pushes the return index onto the RAS.
	Call
	// Ret pops the RAS.
	Ret
	// Fence is a full memory fence (MFENCE): no younger memory op may
	// issue until it commits.
	Fence
	// LFence serializes load issue (LFENCE): no younger instruction may
	// issue until all older instructions complete.
	LFence
	// CLFlush evicts the line containing EA from every cache level.
	CLFlush
	// Prefetch warms the line containing EA into the L1D.
	Prefetch
	// RdTSC reads the cycle counter into Dest.
	RdTSC
	// RdRand reads the hardware random number generator into Dest; the
	// RNG is a shared contended resource (the RDRAND covert channel).
	RdRand
	// Syscall traps into the kernel (serializing; adds kernel noise).
	Syscall
	// Serialize is a full pipeline serialization (CPUID-like).
	Serialize
	// Quiesce stalls fetch until all in-flight activity drains (models
	// the gem5 quiesce pseudo-op that parks the CPU).
	Quiesce
	numKinds
)

var kindNames = [numKinds]string{
	"nop", "alu", "mul", "div", "fp", "ld", "st", "br", "jmp", "ijmp",
	"call", "ret", "mfence", "lfence", "clflush", "prefetch", "rdtsc",
	"rdrand", "syscall", "serialize", "quiesce",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMem reports whether the kind computes an effective address.
func (k Kind) IsMem() bool {
	switch k {
	case Load, Store, CLFlush, Prefetch:
		return true
	}
	return false
}

// IsCtrl reports whether the kind redirects control flow.
func (k Kind) IsCtrl() bool {
	switch k {
	case Branch, Jump, IndirectJump, Call, Ret:
		return true
	}
	return false
}

// IsSerializing reports whether the kind drains the pipeline before and
// after executing.
func (k Kind) IsSerializing() bool {
	switch k {
	case Syscall, Serialize, Quiesce:
		return true
	}
	return false
}

// Cond is a branch condition evaluated over the values of Src1 and Src2.
type Cond uint8

const (
	// CondEQ taken when Src1 == Src2.
	CondEQ Cond = iota
	// CondNE taken when Src1 != Src2.
	CondNE
	// CondLT taken when int64(Src1) < int64(Src2).
	CondLT
	// CondGE taken when int64(Src1) >= int64(Src2).
	CondGE
	// CondULT taken when Src1 < Src2 (unsigned).
	CondULT
	// CondUGE taken when Src1 >= Src2 (unsigned).
	CondUGE
)

func (c Cond) String() string {
	switch c {
	case CondEQ:
		return "eq"
	case CondNE:
		return "ne"
	case CondLT:
		return "lt"
	case CondGE:
		return "ge"
	case CondULT:
		return "ult"
	case CondUGE:
		return "uge"
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Eval evaluates the condition on concrete operand values.
func (c Cond) Eval(a, b uint64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return int64(a) < int64(b)
	case CondGE:
		return int64(a) >= int64(b)
	case CondULT:
		return a < b
	case CondUGE:
		return a >= b
	}
	return false
}

// AluOp selects the integer/float ALU function.
type AluOp uint8

const (
	// OpAdd computes Src1 + Src2 + Imm (covers LI and MOV via R0).
	OpAdd AluOp = iota
	// OpSub computes Src1 - Src2 + Imm.
	OpSub
	// OpAnd computes Src1 & Src2 & uint64(Imm) when Imm != 0, else Src1 & Src2.
	OpAnd
	// OpOr computes Src1 | Src2 | uint64(Imm).
	OpOr
	// OpXor computes Src1 ^ Src2 ^ uint64(Imm).
	OpXor
	// OpShl computes Src1 << (Src2 + Imm).
	OpShl
	// OpShr computes Src1 >> (Src2 + Imm).
	OpShr
	// OpMul computes Src1 * Src2 (IntMult kind).
	OpMul
	// OpDiv computes Src1 / Src2 (IntDiv kind, 0 if divisor 0).
	OpDiv
)

// Phase tags an instruction with the attack phase it belongs to. The dataset
// builder uses phases to checkpoint samples (e.g. the paper excludes the
// recovery/transmission phase of held-out attacks from k-fold test sets).
type Phase uint8

const (
	// PhaseNone marks ordinary (benign) execution.
	PhaseNone Phase = iota
	// PhaseSetup covers attack preparation: allocation, priming, flushing.
	PhaseSetup
	// PhaseMistrain covers predictor/TRR mistraining loops.
	PhaseMistrain
	// PhaseLeak covers the transient window in which the secret is read
	// and encoded into microarchitectural state.
	PhaseLeak
	// PhaseTransmit covers the receive/decode side of the channel
	// (reload-and-time loops, probe sweeps).
	PhaseTransmit
	// PhaseRecover covers post-leak cleanup.
	PhaseRecover
)

func (p Phase) String() string {
	switch p {
	case PhaseNone:
		return "none"
	case PhaseSetup:
		return "setup"
	case PhaseMistrain:
		return "mistrain"
	case PhaseLeak:
		return "leak"
	case PhaseTransmit:
		return "transmit"
	case PhaseRecover:
		return "recover"
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Inst is one micro-op. Memory operations compute
//
//	EA = reg[Base] + reg[Index]*Scale + Imm
//
// Branches evaluate Cond over (Src1, Src2) and jump to Target when taken.
// ALU ops compute Alu over (Src1, Src2, Imm) into Dest.
type Inst struct {
	Kind Kind
	Alu  AluOp
	Cond Cond

	Dest Reg
	Src1 Reg
	Src2 Reg

	// Base/Index/Scale/Imm form the effective address for memory ops;
	// Imm is also the ALU immediate.
	Base  Reg
	Index Reg
	Scale int64
	Imm   int64

	// Target is the resolved instruction index for direct control flow.
	Target int

	// Kernel marks a memory access to a supervisor page: it faults at
	// commit in user mode but still executes transiently (the Meltdown
	// window).
	Kernel bool

	// NoFwd marks a load as hitting a microcode-assist path that
	// forwards stale buffer data speculatively (LVI/MDS modelling).
	NoFwd bool

	// Phase annotates the attack phase for dataset checkpointing.
	Phase Phase
}

// EA computes the effective address of a memory micro-op given a register
// read function.
func (in *Inst) EA(read func(Reg) uint64) uint64 {
	return read(in.Base) + read(in.Index)*uint64(in.Scale) + uint64(in.Imm)
}

// String renders a compact disassembly of the instruction.
func (in Inst) String() string {
	switch {
	case in.Kind == IntAlu || in.Kind == IntMult || in.Kind == IntDiv || in.Kind == FloatAlu:
		return fmt.Sprintf("%s.%d r%d, r%d, r%d, #%d", in.Kind, in.Alu, in.Dest, in.Src1, in.Src2, in.Imm)
	case in.Kind.IsMem():
		return fmt.Sprintf("%s r%d, [r%d + r%d*%d + %d]", in.Kind, in.Dest, in.Base, in.Index, in.Scale, in.Imm)
	case in.Kind == Branch:
		return fmt.Sprintf("br.%s r%d, r%d -> %d", in.Cond, in.Src1, in.Src2, in.Target)
	case in.Kind == Jump || in.Kind == Call:
		return fmt.Sprintf("%s -> %d", in.Kind, in.Target)
	case in.Kind == IndirectJump:
		return fmt.Sprintf("ijmp [r%d]", in.Src1)
	default:
		return in.Kind.String()
	}
}

// Class labels a program with its workload category. Benign workloads use
// ClassBenign; each attack family has its own class so the conditional GAN
// and the k-fold splitter can treat categories independently.
type Class int

const (
	ClassBenign Class = iota
	ClassSpectrePHT
	ClassSpectreBTB
	ClassSpectreRSB
	ClassSpectreSTL
	ClassMeltdown
	ClassLVI
	ClassMedusaCacheIndex
	ClassMedusaUnaligned
	ClassMedusaShadowREP
	ClassFallout
	ClassRowhammer
	ClassDRAMA
	ClassSMotherSpectre
	ClassBranchScope
	ClassMicroScope
	ClassLeakyBuddies
	ClassRDRANDCovert
	ClassFlushConflict
	ClassFlushFlush
	ClassFlushReload
	ClassPrimeProbe
	NumClasses
)

var classNames = [NumClasses]string{
	"benign", "spectre-pht", "spectre-btb", "spectre-rsb", "spectre-stl",
	"meltdown", "lvi", "medusa-cache-index", "medusa-unaligned",
	"medusa-shadow-rep", "fallout", "rowhammer", "drama", "smotherspectre",
	"branchscope", "microscope", "leaky-buddies", "rdrand-covert",
	"flushconflict", "flush-flush", "flush-reload", "prime-probe",
}

func (c Class) String() string {
	if c >= 0 && int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Malicious reports whether the class is an attack category.
func (c Class) Malicious() bool { return c != ClassBenign }

// NumAttackClasses is the number of attack categories (the paper's "19
// categories" plus the three classic cache attacks).
const NumAttackClasses = int(NumClasses) - 1

// Program is a fully resolved micro-op sequence plus metadata.
type Program struct {
	Name  string
	Class Class
	Code  []Inst

	// InitRegs seeds architectural registers before execution.
	InitRegs map[Reg]uint64
	// InitMem seeds memory words (address -> value) before execution.
	InitMem map[uint64]uint64
}

// Len returns the static instruction count.
func (p *Program) Len() int { return len(p.Code) }

// Validate checks structural invariants: targets in range, register indices
// valid, scale fields sane. The simulator assumes a validated program.
func (p *Program) Validate() error {
	for i, in := range p.Code {
		if in.Kind >= numKinds {
			return fmt.Errorf("%s: inst %d: bad kind %d", p.Name, i, in.Kind)
		}
		if in.Dest >= NumRegs || in.Src1 >= NumRegs || in.Src2 >= NumRegs ||
			in.Base >= NumRegs || in.Index >= NumRegs {
			return fmt.Errorf("%s: inst %d: register out of range", p.Name, i)
		}
		switch in.Kind {
		case Branch, Jump, Call:
			if in.Target < 0 || in.Target >= len(p.Code) {
				return fmt.Errorf("%s: inst %d: target %d out of range [0,%d)", p.Name, i, in.Target, len(p.Code))
			}
		}
	}
	return nil
}
