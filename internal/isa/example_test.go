package isa_test

import (
	"fmt"

	"evax/internal/isa"
)

// ExampleBuilder assembles and architecturally executes a small program.
func ExampleBuilder() {
	b := isa.NewBuilder("triangle", isa.ClassBenign)
	b.Li(isa.R1, 0)  // sum
	b.Li(isa.R2, 1)  // i
	b.Li(isa.R3, 11) // bound
	b.Label("top")
	b.Add(isa.R1, isa.R1, isa.R2)
	b.Addi(isa.R2, isa.R2, 1)
	b.Br(isa.CondNE, isa.R2, isa.R3, "top")
	prog := b.MustBuild()

	it := isa.NewInterp(prog)
	it.Run(prog, 1000)
	fmt.Println("sum 1..10 =", it.Regs[isa.R1])
	// Output: sum 1..10 = 55
}

// ExampleInterp_kernelFault shows the architectural behaviour of a kernel
// access: the fault suppresses the value (the pipeline model additionally
// gives it a transient window).
func ExampleInterp_kernelFault() {
	b := isa.NewBuilder("fault", isa.ClassMeltdown)
	b.InitReg(isa.R1, isa.KernelBase)
	b.InitMem(isa.KernelBase, 42) // the "secret"
	b.Load(isa.R2, isa.R1, isa.R0, 0, 0)
	prog := b.MustBuild()

	it := isa.NewInterp(prog)
	it.Run(prog, 10)
	fmt.Println("faults:", it.Faults, "value:", it.Regs[isa.R2])
	// Output: faults: 1 value: 0
}
