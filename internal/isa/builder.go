package isa

import "fmt"

// Builder assembles a Program with symbolic labels. All emit methods return
// the index of the emitted instruction. Branch targets may reference labels
// defined later; Build resolves them.
type Builder struct {
	name   string
	class  Class
	code   []Inst
	labels map[string]int
	fixups []fixup
	phase  Phase
	regs   map[Reg]uint64
	mem    map[uint64]uint64
	errs   []error
}

type fixup struct {
	at    int
	label string
}

// NewBuilder creates a builder for a program of the given name and class.
func NewBuilder(name string, class Class) *Builder {
	return &Builder{
		name:   name,
		class:  class,
		labels: make(map[string]int),
		regs:   make(map[Reg]uint64),
		mem:    make(map[uint64]uint64),
	}
}

// SetPhase sets the phase tag applied to subsequently emitted instructions.
func (b *Builder) SetPhase(p Phase) { b.phase = p }

// InitReg seeds an architectural register value.
func (b *Builder) InitReg(r Reg, v uint64) { b.regs[r] = v }

// InitMem seeds a memory word.
func (b *Builder) InitMem(addr, v uint64) { b.mem[addr] = v }

// Label defines a label at the next instruction index.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.code)
}

// Here returns the index of the next instruction to be emitted.
func (b *Builder) Here() int { return len(b.code) }

func (b *Builder) emit(in Inst) int {
	in.Phase = b.phase
	b.code = append(b.code, in)
	return len(b.code) - 1
}

// Nop emits a no-op.
func (b *Builder) Nop() int { return b.emit(Inst{Kind: Nop}) }

// Li loads an immediate into dst (add R0 + imm).
func (b *Builder) Li(dst Reg, imm int64) int {
	return b.emit(Inst{Kind: IntAlu, Alu: OpAdd, Dest: dst, Src1: R0, Src2: R0, Imm: imm})
}

// Mov copies src to dst.
func (b *Builder) Mov(dst, src Reg) int {
	return b.emit(Inst{Kind: IntAlu, Alu: OpAdd, Dest: dst, Src1: src, Src2: R0})
}

// Alu emits an integer ALU op dst = op(s1, s2) + imm semantics per AluOp.
func (b *Builder) Alu(op AluOp, dst, s1, s2 Reg, imm int64) int {
	kind := IntAlu
	switch op {
	case OpMul:
		kind = IntMult
	case OpDiv:
		kind = IntDiv
	}
	return b.emit(Inst{Kind: kind, Alu: op, Dest: dst, Src1: s1, Src2: s2, Imm: imm})
}

// Add emits dst = s1 + s2.
func (b *Builder) Add(dst, s1, s2 Reg) int { return b.Alu(OpAdd, dst, s1, s2, 0) }

// Addi emits dst = s1 + imm.
func (b *Builder) Addi(dst, s1 Reg, imm int64) int { return b.Alu(OpAdd, dst, s1, R0, imm) }

// Sub emits dst = s1 - s2.
func (b *Builder) Sub(dst, s1, s2 Reg) int { return b.Alu(OpSub, dst, s1, s2, 0) }

// And emits dst = s1 & s2.
func (b *Builder) And(dst, s1, s2 Reg) int { return b.Alu(OpAnd, dst, s1, s2, 0) }

// Xor emits dst = s1 ^ s2.
func (b *Builder) Xor(dst, s1, s2 Reg) int { return b.Alu(OpXor, dst, s1, s2, 0) }

// Shli emits dst = s1 << imm.
func (b *Builder) Shli(dst, s1 Reg, imm int64) int { return b.Alu(OpShl, dst, s1, R0, imm) }

// Shri emits dst = s1 >> imm.
func (b *Builder) Shri(dst, s1 Reg, imm int64) int { return b.Alu(OpShr, dst, s1, R0, imm) }

// Mul emits dst = s1 * s2 on the multiply pipe.
func (b *Builder) Mul(dst, s1, s2 Reg) int { return b.Alu(OpMul, dst, s1, s2, 0) }

// Div emits dst = s1 / s2 on the divide unit.
func (b *Builder) Div(dst, s1, s2 Reg) int { return b.Alu(OpDiv, dst, s1, s2, 0) }

// FAdd emits a floating ALU op (timing only; value semantics are integer add).
func (b *Builder) FAdd(dst, s1, s2 Reg) int {
	return b.emit(Inst{Kind: FloatAlu, Alu: OpAdd, Dest: dst, Src1: s1, Src2: s2})
}

// Load emits dst = mem[base + index*scale + imm].
func (b *Builder) Load(dst, base, index Reg, scale, imm int64) int {
	return b.emit(Inst{Kind: Load, Dest: dst, Base: base, Index: index, Scale: scale, Imm: imm})
}

// LoadK emits a kernel-privileged load that faults at commit (Meltdown-style).
func (b *Builder) LoadK(dst, base, index Reg, scale, imm int64) int {
	return b.emit(Inst{Kind: Load, Dest: dst, Base: base, Index: index, Scale: scale, Imm: imm, Kernel: true})
}

// LoadAssist emits a load marked as taking the microcode-assist path that
// speculatively forwards stale buffer data (LVI/MDS-style).
func (b *Builder) LoadAssist(dst, base, index Reg, scale, imm int64) int {
	return b.emit(Inst{Kind: Load, Dest: dst, Base: base, Index: index, Scale: scale, Imm: imm, NoFwd: true})
}

// Store emits mem[base + index*scale + imm] = src.
func (b *Builder) Store(src, base, index Reg, scale, imm int64) int {
	return b.emit(Inst{Kind: Store, Src1: src, Base: base, Index: index, Scale: scale, Imm: imm})
}

// CLFlush emits a cache line flush of the addressed line.
func (b *Builder) CLFlush(base, index Reg, scale, imm int64) int {
	return b.emit(Inst{Kind: CLFlush, Base: base, Index: index, Scale: scale, Imm: imm})
}

// Prefetch emits a prefetch of the addressed line into L1D.
func (b *Builder) Prefetch(base, index Reg, scale, imm int64) int {
	return b.emit(Inst{Kind: Prefetch, Base: base, Index: index, Scale: scale, Imm: imm})
}

// Br emits a conditional branch to label.
func (b *Builder) Br(c Cond, s1, s2 Reg, label string) int {
	i := b.emit(Inst{Kind: Branch, Cond: c, Src1: s1, Src2: s2})
	b.fixups = append(b.fixups, fixup{at: i, label: label})
	return i
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) int {
	i := b.emit(Inst{Kind: Jump})
	b.fixups = append(b.fixups, fixup{at: i, label: label})
	return i
}

// IJmp emits an indirect jump through src (target predicted by the BTB).
func (b *Builder) IJmp(src Reg) int {
	return b.emit(Inst{Kind: IndirectJump, Src1: src})
}

// Call emits a direct call to label.
func (b *Builder) Call(label string) int {
	i := b.emit(Inst{Kind: Call})
	b.fixups = append(b.fixups, fixup{at: i, label: label})
	return i
}

// Ret emits a return (pops the return stack).
func (b *Builder) Ret() int { return b.emit(Inst{Kind: Ret}) }

// Fence emits a full memory fence.
func (b *Builder) Fence() int { return b.emit(Inst{Kind: Fence}) }

// LFence emits a load/serialization fence.
func (b *Builder) LFence() int { return b.emit(Inst{Kind: LFence}) }

// RdTSC reads the cycle counter into dst.
func (b *Builder) RdTSC(dst Reg) int { return b.emit(Inst{Kind: RdTSC, Dest: dst}) }

// RdRand reads the shared hardware RNG into dst.
func (b *Builder) RdRand(dst Reg) int { return b.emit(Inst{Kind: RdRand, Dest: dst}) }

// Syscall emits a serializing kernel trap.
func (b *Builder) Syscall() int { return b.emit(Inst{Kind: Syscall}) }

// Serialize emits a CPUID-like full serialization.
func (b *Builder) Serialize() int { return b.emit(Inst{Kind: Serialize}) }

// Quiesce emits a fetch-quiescing stall.
func (b *Builder) Quiesce() int { return b.emit(Inst{Kind: Quiesce}) }

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.fixups {
		t, ok := b.labels[f.label]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("undefined label %q", f.label))
			continue
		}
		b.code[f.at].Target = t
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("%s: %v", b.name, b.errs[0])
	}
	p := &Program{
		Name:     b.name,
		Class:    b.class,
		Code:     b.code,
		InitRegs: b.regs,
		InitMem:  b.mem,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build but panics on error; intended for statically known
// generator code whose correctness is covered by tests.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
