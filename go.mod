module evax

go 1.22
