// Package evax's top-level benchmarks regenerate every table and figure of
// the paper's evaluation (one benchmark per artifact — see DESIGN.md's
// experiment index) plus the ablations DESIGN.md calls out, and measure the
// core substrates. Custom metrics carry each experiment's headline number
// alongside wall-clock time, e.g.
//
//	go test -bench=Figure16 -benchmem
//
// reports the gated and always-on overheads as auc/ovh metrics.
package evax

import (
	"sync"
	"testing"

	"evax/internal/attacks"
	"evax/internal/dataset"
	"evax/internal/defense"
	"evax/internal/detect"
	"evax/internal/experiments"
	"evax/internal/hpc"
	"evax/internal/isa"
	"evax/internal/perceptron"
	"evax/internal/sim"
	"evax/internal/workload"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchLabOnce.Do(func() { benchLab = experiments.NewLab(experiments.QuickLabOptions()) })
	return benchLab
}

// --- Substrate benchmarks -------------------------------------------------

// BenchmarkSimulatorThroughput measures raw committed instructions per
// second on a mixed benign kernel.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := sim.New(sim.DefaultConfig(), workload.Compress(1, 2))
		m.Run(2_000_000)
		b.SetBytes(0)
		b.ReportMetric(float64(m.Instructions()), "instr/op")
	}
}

// BenchmarkAttackSimulation runs the full Spectre gadget to completion.
func BenchmarkAttackSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := sim.New(sim.DefaultConfig(), attacks.SpectrePHT(11, 4))
		m.Run(2_000_000)
		if m.C.LeakedTransientLoads == 0 {
			b.Fatal("attack inert")
		}
	}
}

// BenchmarkDetectorInference measures one EVAX classification (the paper's
// HW does this in a few hundred cycles; here it is the software model).
func BenchmarkDetectorInference(b *testing.B) {
	l := lab(b)
	derived := l.DS.Samples[0].Derived
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.EVAX.Score(derived)
	}
}

// BenchmarkPerceptronHW measures the quantized hardware-model evaluation
// and reports its serial-adder latency estimate.
func BenchmarkPerceptronHW(b *testing.B) {
	p := perceptron.New(145)
	for i := range p.W {
		p.W[i] = float64(i%5) - 2
	}
	q := p.Quantize()
	bits := make([]float64, 145)
	for i := range bits {
		if i%3 == 0 {
			bits[i] = 1
		}
	}
	b.ReportMetric(float64(q.LatencyCycles()), "hw-cycles")
	b.ReportMetric(float64(q.TransistorEstimate()), "transistors")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Predict(bits)
	}
}

// BenchmarkGANGenerate measures conditional sample generation.
func BenchmarkGANGenerate(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.GAN.Generate(i % 22)
	}
}

// BenchmarkCorpusCollection measures dataset construction from one program.
func BenchmarkCorpusCollection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := dataset.Collect(sim.DefaultConfig(), workload.AStar(1, 1), 2000, 40_000)
		if len(s) == 0 {
			b.Fatal("no samples")
		}
	}
}

// --- One benchmark per paper artifact --------------------------------------

// BenchmarkTableI_FeatureEngineering regenerates the engineered security
// HPC list from the trained generator.
func BenchmarkTableI_FeatureEngineering(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.TableI(l)
		if len(r.Features) != 12 {
			b.Fatalf("mined %d features", len(r.Features))
		}
	}
}

// BenchmarkTableII_Parameters regenerates the architecture table.
func BenchmarkTableII_Parameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.TableII().Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure6_GramMatrices regenerates the style-interpretability
// comparison and reports both losses.
func BenchmarkFigure6_GramMatrices(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var r experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure6(l)
	}
	b.ReportMetric(r.LossBC, "Lgm-same")
	b.ReportMetric(r.LossAC, "Lgm-cross")
}

// BenchmarkFigure7_StyleLoss regenerates the training-quality trace.
func BenchmarkFigure7_StyleLoss(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var r experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure7(l)
	}
	b.ReportMetric(r.InitialStyleLoss, "Lgm-initial")
	b.ReportMetric(r.StyleLoss[len(r.StyleLoss)-1], "Lgm-final")
}

// BenchmarkFigure9to11_ComplexHPCs regenerates the feature-separation rows.
func BenchmarkFigure9to11_ComplexHPCs(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(experiments.Figure9to11(l).Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFigure14_AdaptiveIPC regenerates the adaptive-architecture IPC
// comparison and reports EVAX's IPC share of baseline.
func BenchmarkFigure14_AdaptiveIPC(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var r experiments.Figure14Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure14(l)
	}
	for _, s := range r.Series {
		if s.Name == "EVAX-SpectreSafe" {
			b.ReportMetric(s.MeanIPC/r.Baseline, "ipc-share")
		}
	}
}

// BenchmarkFigure15_FalseRates regenerates the FP/FN study and reports
// EVAX's false positives per 10k instructions.
func BenchmarkFigure15_FalseRates(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var r experiments.Figure15Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure15(l)
	}
	for _, row := range r.Rows {
		if row.Detector == "EVAX" && row.Interval == l.Opts.Corpus.Interval {
			b.ReportMetric(row.FPPer10K, "fp-per-10k")
			b.ReportMetric(row.FNPer10K, "fn-per-10k")
		}
	}
}

// BenchmarkFigure16_EndToEnd regenerates the overhead comparison and
// reports the always-on and EVAX-gated fencing overheads.
func BenchmarkFigure16_EndToEnd(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var r experiments.Figure16Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure16(l)
	}
	for _, row := range r.Rows {
		if row.Policy == sim.PolicyFenceAfterBranch {
			switch row.Gating {
			case "always-on":
				b.ReportMetric(row.Overhead, "fence-ovh")
			case "evax":
				b.ReportMetric(row.Overhead, "gated-ovh")
			}
		}
	}
}

// BenchmarkFigure17_ROC regenerates the evasive-tool resilience study and
// reports both detectors' mean AUC.
func BenchmarkFigure17_ROC(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var r experiments.Figure17Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure17(l, 4)
	}
	b.ReportMetric(r.MeanAUCPerSpectron, "auc-perspectron")
	b.ReportMetric(r.MeanAUCEVAX, "auc-evax")
}

// BenchmarkFigure18_AML regenerates the adversarial-ML study.
func BenchmarkFigure18_AML(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var r experiments.Figure18Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure18(l)
	}
	b.ReportMetric(r.AccPFuzzer, "acc-pfuzzer")
	b.ReportMetric(r.AccEVAX, "acc-evax")
}

// BenchmarkFigure19_KFold regenerates a 3-fold subset of the zero-day
// cross-validation (the full 21 folds run via evaxbench -exp fig19).
func BenchmarkFigure19_KFold(b *testing.B) {
	l := lab(b)
	folds := []isa.Class{isa.ClassMeltdown, isa.ClassDRAMA, isa.ClassFlushConflict}
	b.ResetTimer()
	var r experiments.Figure19Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure19(l, folds)
	}
	b.ReportMetric(r.MeanPerSpec, "err-perspectron")
	b.ReportMetric(r.MeanEVAX, "err-evax")
}

// BenchmarkFigure20_DeepNets regenerates the deep-detector study.
func BenchmarkFigure20_DeepNets(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var r experiments.Figure20Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure20(l, []int{1, 8})
	}
	for _, row := range r.Rows {
		if row.HiddenLayers == 8 && row.Training == "evax" {
			b.ReportMetric(row.MedianAcc, "deep-evax-median")
		}
	}
}

// BenchmarkZeroDayTPR regenerates the §VIII-C zero-day table for the
// highlighted classes.
func BenchmarkZeroDayTPR(b *testing.B) {
	l := lab(b)
	classes := []isa.Class{isa.ClassRDRANDCovert, isa.ClassFlushConflict, isa.ClassDRAMA}
	b.ResetTimer()
	var r experiments.ZeroDayResult
	for i := 0; i < b.N; i++ {
		r = experiments.ZeroDayTPR(l, classes)
	}
	for _, row := range r.Rows {
		if row.Class == isa.ClassFlushConflict {
			b.ReportMetric(row.TPREVAX, "tpr-evax")
			b.ReportMetric(row.TPRPerSpec, "tpr-perspectron")
		}
	}
}

// --- Ablations (DESIGN.md §6) ----------------------------------------------

// BenchmarkAblationROBWindow sweeps the ROB size and reports the transient
// leakage a Spectre gadget achieves — the paper's observation that the
// transient window (and hence the evasion space) is bounded by the ROB.
func BenchmarkAblationROBWindow(b *testing.B) {
	for _, rob := range []int{32, 96, 192} {
		rob := rob
		b.Run(map[int]string{32: "rob32", 96: "rob96", 192: "rob192"}[rob], func(b *testing.B) {
			var leaks uint64
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig()
				cfg.ROBEntries = rob
				m := sim.New(cfg, attacks.SpectrePHT(11, 4))
				m.Run(2_000_000)
				leaks = m.C.LeakedTransientLoads
			}
			b.ReportMetric(float64(leaks), "transient-leaks")
		})
	}
}

// BenchmarkAblationSamplingRate sweeps the detector sampling cadence and
// reports windows produced per attack run (finer cadence = earlier
// detection opportunity; the paper samples down to every 100 instructions).
func BenchmarkAblationSamplingRate(b *testing.B) {
	for _, interval := range []uint64{100, 1000, 10000} {
		interval := interval
		name := map[uint64]string{100: "every100", 1000: "every1k", 10000: "every10k"}[interval]
		b.Run(name, func(b *testing.B) {
			var windows int
			for i := 0; i < b.N; i++ {
				s := dataset.Collect(sim.DefaultConfig(), attacks.Meltdown(11, 20), interval, 60_000)
				windows = len(s)
			}
			b.ReportMetric(float64(windows), "windows")
		})
	}
}

// BenchmarkAblationFeatureSets compares detector accuracy across the
// 106-feature (PerSpectron), 133-feature (EVAX base) and 145-feature
// (EVAX + engineered) spaces on the held-out corpus.
func BenchmarkAblationFeatureSets(b *testing.B) {
	l := lab(b)
	eval := l.EvalCorpus(8800)
	sets := []struct {
		name string
		fs   *detect.FeaturePlan
	}{
		{"feat106", detect.PerSpectron()},
		{"feat133", detect.EVAXBase()},
		{"feat145", func() *detect.FeaturePlan {
			fs := detect.EVAXBase()
			fs.SetEngineered(detect.DefaultEngineered(fs))
			return fs
		}()},
	}
	for _, set := range sets {
		set := set
		b.Run(set.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				d := detect.NewPerceptron(1, set.fs)
				idx := make([]int, len(l.DS.Samples))
				for k := range idx {
					idx[k] = k
				}
				d.Train(l.DS, idx, detect.DefaultTrainOptions())
				correct := 0
				for k := range eval {
					if d.Flag(eval[k].Derived) == eval[k].Malicious {
						correct++
					}
				}
				acc = float64(correct) / float64(len(eval))
			}
			b.ReportMetric(acc, "accuracy")
		})
	}
}

// BenchmarkAblationSecureWindow sweeps the paper's secure-mode window
// lengths (10k/100k/1M instructions) under a rare-flag workload and
// reports the overhead of each.
func BenchmarkAblationSecureWindow(b *testing.B) {
	for _, win := range []uint64{10_000, 100_000, 1_000_000} {
		win := win
		name := map[uint64]string{10_000: "win10k", 100_000: "win100k", 1_000_000: "win1M"}[win]
		b.Run(name, func(b *testing.B) {
			var ovh float64
			for i := 0; i < b.N; i++ {
				dcfg := defense.DefaultConfig(sim.PolicyFenceAfterBranch)
				dcfg.SecureWindow = win
				dcfg.SampleInterval = 2000
				count := 0
				rare := defense.FlaggerFunc(func(hpc.Sample) bool {
					count++
					return count%20 == 0
				})
				base := defense.RunProgram(sim.DefaultConfig(), workload.Stream(1, 3), defense.NeverOn, dcfg, 400_000)
				prot := defense.RunProgram(sim.DefaultConfig(), workload.Stream(1, 3), rare, dcfg, 400_000)
				ovh = defense.Overhead(prot, base)
			}
			b.ReportMetric(ovh, "overhead")
		})
	}
}

// BenchmarkAblationPrefetcher compares streaming performance and the
// Flush+Reload attack's transient leakage with the stride prefetcher off
// and on — prefetching both hides memory latency and perturbs cache-timing
// channels.
func BenchmarkAblationPrefetcher(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			var leaks uint64
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig()
				cfg.Prefetcher.Enabled = on
				m := sim.New(cfg, workload.Stream(1, 2))
				m.Run(2_000_000)
				cycles = m.Cycles()
				ma := sim.New(cfg, attacks.SpectrePHT(11, 4))
				ma.Run(2_000_000)
				leaks = ma.C.LeakedTransientLoads
			}
			b.ReportMetric(float64(cycles), "stream-cycles")
			b.ReportMetric(float64(leaks), "transient-leaks")
		})
	}
}
