// Zero-day detection: hold an attack class out of training entirely and
// test whether the detectors still flag it — the paper's k-fold
// cross-validation setting (§VIII-C). EVAX's AM-GAN vaccination generalizes
// to several attacks PerSpectron misses.
//
//	go run ./examples/zero_day
package main

import (
	"fmt"

	"evax/internal/experiments"
	"evax/internal/isa"
)

func main() {
	fmt.Println("training the EVAX pipeline...")
	lab := experiments.NewLab(experiments.QuickLabOptions())

	classes := []isa.Class{
		isa.ClassFlushConflict, // KASLR bypass with no hardware fix
		isa.ClassDRAMA,         // DRAM row-buffer covert channel
		isa.ClassRDRANDCovert,  // RNG contention channel
		isa.ClassMedusaCacheIndex,
	}
	fmt.Println("hold-one-attack-out evaluation (this retrains per fold):")
	res := experiments.ZeroDayTPR(lab, classes)
	fmt.Print(res)

	fmt.Println("\nreading the table:")
	fmt.Println("  - TPR with the class held out is the zero-day detection rate;")
	fmt.Println("  - the retrained column shows detection once the attack is known")
	fmt.Println("    and pushed to the detector as a weight update.")
}
