// Adaptive defense: the headline EVAX result. A trained detector gates the
// Fencing and InvisiSpec mitigations: benign programs run at full speed
// while attacks trigger secure-mode windows — cutting the always-on
// mitigation overhead by an order of magnitude while keeping transient
// leakage suppressed.
//
//	go run ./examples/adaptive_defense
package main

import (
	"fmt"

	"evax/internal/attacks"
	"evax/internal/defense"
	"evax/internal/experiments"
	"evax/internal/sim"
	"evax/internal/workload"
)

func main() {
	fmt.Println("training the EVAX pipeline (corpus + AM-GAN + detector)...")
	lab := experiments.NewLab(experiments.QuickLabOptions())
	flagger := defense.NewDetectorFlagger(lab.EVAX, lab.DS)

	dcfg := defense.DefaultConfig(sim.PolicyFenceAfterBranch)
	dcfg.SampleInterval = 2000
	dcfg.SecureWindow = 20_000

	// Benign program: compare always-on fencing vs EVAX-gated fencing.
	bench := func(fl defense.Flagger) defense.Result {
		p := workload.Compress(901, 3)
		return defense.RunProgram(sim.DefaultConfig(), p, fl, dcfg, 300_000)
	}
	base := bench(defense.NeverOn)
	always := bench(defense.AlwaysOn)
	gated := bench(flagger)
	fmt.Printf("\nbenign workload (compress):\n")
	fmt.Printf("  unprotected        IPC %.3f\n", base.IPC)
	fmt.Printf("  always-on fencing  IPC %.3f (overhead %.1f%%)\n",
		always.IPC, 100*defense.Overhead(always, base))
	fmt.Printf("  EVAX-gated fencing IPC %.3f (overhead %.1f%%, %d flags in %d windows)\n",
		gated.IPC, 100*defense.Overhead(gated, base), gated.Flags, gated.Windows)

	// Attack program: the detector flags it and the mitigation engages.
	// Fast sampling (the paper samples down to every 100 instructions)
	// catches the attack within its first rounds.
	acfg := defense.DefaultConfig(sim.PolicyInvisiSpecSpectre)
	acfg.SampleInterval = 500
	unprot := defense.RunProgram(sim.DefaultConfig(), attacks.SpectrePHT(11, 10),
		defense.NeverOn, acfg, 2_000_000)
	atk := defense.RunProgram(sim.DefaultConfig(), attacks.SpectrePHT(11, 10), flagger, acfg, 2_000_000)
	fmt.Printf("\nSpectre-PHT under adaptive InvisiSpec:\n")
	fmt.Printf("  windows flagged:       %d / %d\n", atk.Flags, atk.Windows)
	fmt.Printf("  secure-mode share:     %.0f%% of instructions\n",
		100*float64(atk.SecureInstr)/float64(atk.Instructions))
	fmt.Printf("  transient cache leaks: %d (unprotected run: %d)\n",
		atk.LeakedTransient, unprot.LeakedTransient)
}
