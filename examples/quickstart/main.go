// Quickstart: simulate a Spectre attack, watch it leak, then train a small
// EVAX detector and watch it flag the attack's sampling windows.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"evax/internal/attacks"
	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/isa"
	"evax/internal/sim"
	"evax/internal/workload"
)

func main() {
	// 1. Run a Spectre bounds-check-bypass on the cycle-level core.
	prog := attacks.SpectrePHT(11, 2)
	m := sim.New(sim.DefaultConfig(), prog)
	m.Run(2_000_000)
	fmt.Printf("Spectre-PHT: %d instructions, IPC %.2f\n", m.Instructions(), m.IPC())
	fmt.Printf("  transient loads that touched the cache: %d\n", m.C.LeakedTransientLoads)
	fmt.Printf("  secret recovered by the reload gadget:  %d\n", int64(m.ArchReg(isa.R30)))

	// 2. The same gadget under a mitigation leaks nothing.
	m2 := sim.New(sim.DefaultConfig(), attacks.SpectrePHT(11, 2))
	m2.SetPolicy(sim.PolicyInvisiSpecSpectre)
	m2.Run(2_000_000)
	fmt.Printf("under InvisiSpec: transient cache leaks = %d, recovered = %d\n",
		m2.C.LeakedTransientLoads, int64(m2.ArchReg(isa.R30)))

	// 3. Train a tiny detector: a few benign workloads vs a few attacks.
	var samples []dataset.Sample
	cfg := sim.DefaultConfig()
	for _, w := range workload.All()[:4] {
		samples = append(samples, dataset.Collect(cfg, w.Build(1, 2), 2000, 40_000)...)
	}
	for _, a := range attacks.All()[:6] {
		samples = append(samples, dataset.Collect(cfg, a.Build(11, 20), 2000, 40_000)...)
	}
	ds := dataset.New(samples)
	fmt.Printf("\ncorpus: %s\n", ds.Stats())

	fs := detect.EVAXBase()
	fs.SetEngineered(detect.DefaultEngineered(fs))
	det := detect.NewPerceptron(1, fs)
	split := ds.RandomSplit(1, 0.7)
	det.Train(ds, split.Train, detect.DefaultTrainOptions())
	c := det.Evaluate(ds, split.Test)
	fmt.Printf("detector accuracy on held-out windows: %.1f%% (TPR %.2f, FPR %.2f)\n",
		100*c.Accuracy(), c.TPR(), c.FPR())
}
