// Feature engineering: train the conditional AM-GAN on attack samples and
// mine new security-centric HPCs from the generator's hidden weights —
// the paper's automated alternative to brute-forcing 2.6e8 counter
// combinations (§VI-A, Table I). The mined AND-combinations are then shown
// separating attacks from benign traffic.
//
//	go run ./examples/feature_engineering
package main

import (
	"fmt"

	"evax/internal/detect"
	"evax/internal/experiments"
	"evax/internal/isa"
)

func main() {
	fmt.Println("training the AM-GAN over the EVAX counter space...")
	lab := experiments.NewLab(experiments.QuickLabOptions())

	fmt.Println()
	fmt.Print(experiments.TableI(lab))

	// Show each engineered feature's activation on attacks vs benign.
	fs := detect.EVAXBase()
	fs.SetEngineered(lab.Mined)
	fmt.Println("\nmean engineered-feature activation (benign vs attacks):")
	var benignSum, attackSum []float64
	benignN, attackN := 0, 0
	for i := range lab.DS.Samples {
		s := &lab.DS.Samples[i]
		v := fs.Vector(s.Derived)
		eng := v[fs.BaseDim():]
		if benignSum == nil {
			benignSum = make([]float64, len(eng))
			attackSum = make([]float64, len(eng))
		}
		if s.Class == isa.ClassBenign {
			for j, x := range eng {
				benignSum[j] += x
			}
			benignN++
		} else {
			for j, x := range eng {
				attackSum[j] += x
			}
			attackN++
		}
	}
	for j, f := range lab.Mined {
		fmt.Printf("  %-64s benign %.5f  attack %.5f\n",
			f.Name, benignSum[j]/float64(benignN), attackSum[j]/float64(attackN))
	}

	fmt.Println("\nGram-matrix quality check for the trained generator:")
	fig6 := experiments.Figure6(lab)
	fmt.Printf("  L_GM(same type)  = %.5f\n", fig6.LossBC)
	fmt.Printf("  L_GM(cross type) = %.5f\n", fig6.LossAC)
}
