# Local and CI invocations are identical: .github/workflows/ci.yml calls
# these targets, so a green `make check` locally means a green CI run.

GO ?= go

.PHONY: build test race lint bench bench-json faults serve-test swap-test kernel-test chaos-test fleet-test check fmt

build: ## compile every package
	$(GO) build ./...

test: ## run the tier-1 test suite
	$(GO) test ./...

race: ## run the test suite under the race detector
	$(GO) test -race -timeout 30m ./...

lint: ## gofmt (fail on diff), go vet, and the evaxlint suite
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/evaxlint ./...

bench: ## run the microbenchmarks
	$(GO) test -bench=. -benchmem -run=^$$ .

bench-json: ## runner speedup + equivalence report (BENCH_runner.json), then the equivalence tests under -race
	$(GO) run ./cmd/evaxbench -benchjson BENCH_runner.json -quick
	$(GO) test -race -count=1 -run ParallelEquivalence ./internal/dataset ./internal/experiments

faults: ## fault-injection suite under -race: torn writes, injected errors/panics, kill-and-resume
	$(GO) test -race -count=1 ./internal/safeio ./internal/checkpoint ./internal/faultinject
	$(GO) test -race -count=1 -run 'Fallback|Torn|KillAndResume|Resume' ./internal/defense ./internal/dataset ./internal/experiments

serve-test: ## online serving suite under -race: e2e bit-equivalence, kill-and-drain, admission control, load harness, plus a frame-decoder fuzz smoke
	$(GO) test -race -count=1 -timeout 15m ./internal/serve ./internal/benchjson
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 10s ./internal/serve

swap-test: ## live-vaccination gate under -race: generation lifecycle, canary gating, crash-safe staging, zero-downtime hot swap
	$(GO) test -race -count=1 ./internal/engine
	$(GO) test -race -count=1 -run 'Swap|Admin|Manager|Generation|Watch|Rescan' ./internal/serve ./internal/defense

kernel-test: ## fused-kernel gate: bit-identity, quantized agreement, zero-alloc checks, under -race
	$(GO) test -race -count=1 ./internal/kernel ./internal/perceptron
	$(GO) test -race -count=1 -run 'Scorer|Backend' ./internal/serve
	$(GO) test -race -count=1 -run 'FlagWindow|DetectorFlagger' ./internal/defense

chaos-test: ## chaos gate under -race: deterministic fault injection, resilient-client recovery, exactly-once verdict accounting, session resume, leak checks
	$(GO) test -race -count=1 ./internal/netfault ./internal/serve/client
	$(GO) test -race -count=1 -run 'Session|Idle|HalfClose|Resume' ./internal/serve

fleet-test: ## sharded fleet gate under -race: ring routing, pub/sub bus, digest invariance across shard counts, mid-replay fleet swap, coordinator restart
	$(GO) test -race -count=1 ./internal/fleet
	$(GO) test -race -count=1 -run 'PromoteAllFile|ConnStatsFrame' ./internal/engine ./internal/serve

fmt: ## rewrite sources with gofmt
	gofmt -w .

check: build lint test ## everything except race/bench (fast pre-push gate)
